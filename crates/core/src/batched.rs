//! Inter-sequence batched kernel: many alignments per vector.
//!
//! The lane-parallel kernels of [`crate::kernel`] vectorize *within*
//! one antidiagonal and plateau once the live band is narrow — which
//! on real long-read data it almost always is (§6.1). Scrooge
//! (Lindegger et al.) and LOGAN (Zeni et al.) both get their large
//! factors from the *other* axis: packing 8–32 **independent**
//! alignments into each vector register, one alignment per lane, so
//! the register is full even when every band is one cell wide. This
//! module is that inter-sequence kernel ([`KernelKind::Batched`]):
//!
//! * **Persistent lane-major staging** — each lane owns one row in a
//!   three-plane rolling arena (row pitch = band capacity + 2 pad
//!   cells). Round *d* writes its classified antidiagonal into plane
//!   `d mod 3`; the `sl`/`su` operands of round *d* are index-shifted
//!   *views* of the plane written in round *d−1* and the `sd` operand
//!   a view of round *d−2* — the per-operand `copy_from_slice`
//!   staging of the earlier kernel (≈14 B of buffer traffic per
//!   staged cell) disappears. Even the substitution scores are never
//!   staged: the sweep compares the sentinel-padded sequence copies
//!   (materialized once per task, see [`Lane::enter`]) in-register,
//!   so per-round staging traffic is exactly zero bytes.
//! * **Live-lane compaction with mid-flight refill** — X-Drop's early
//!   exits retire lanes at wildly different rounds. Instead of
//!   sweeping a pack until its slowest member terminates, a lane that
//!   terminates (or leaves for the overflow rerun) is finalized and
//!   its slot refilled from the pending task queue at the top of the
//!   next round, continuous-batching style, so occupancy stays near
//!   1.0 instead of draining to a single straggler. Refill timing
//!   cannot affect results: every lane's computation is a pure
//!   function of its own task (lanes share no state, only the arena
//!   allocation), so each task sees exactly the rounds the scalar
//!   reference would run — see [`BatchReport::occupancy`].
//! * **i16 lanes, fully fused rounds in bursts** — cell values are
//!   stored as `i16`, doubling the lane count per register over the
//!   `i32` kernels. Each round is **one** branch-free saturating-`i16`
//!   pass per lane over contiguous slices (the autovectorizer turns it
//!   into `vpaddsw`/`vpmaxsw` chains) with the substitution compare,
//!   the X-Drop cutoff, *and* the max/live-min reductions all fused
//!   in; only three short positional scans follow, reproducing the
//!   scalar reference's first-maximum-wins reductions exactly (the
//!   first slot holding the diagonal maximum *is* the first-max-wins
//!   argmax). Lanes advance [`BURST_ROUNDS`] rounds per engine
//!   iteration so lane state stays in registers and the per-lane loop
//!   overhead amortizes — the bands are only a few vectors wide, so
//!   fixed costs, not arithmetic, bound the round rate.
//! * **Overflow detection and rerun** — `i16` can hold scores the
//!   `i32` reference cannot. A guard band bounds every *live* stored
//!   value away from the representable edges by the maximum per-round
//!   score step; the first round a live value escapes the guard band,
//!   the lane is marked overflowed and transparently re-run through
//!   the scalar `i32` reference. See the soundness argument on
//!   [`HIGH_GUARD`].
//!
//! ## Arena layout and padding invariants
//!
//! Plane row slot for logical band position `i` of the row with base
//! `b` (= that round's `cand_lo`) is `1 + (i − b)`: slot 0 is a
//! permanent leading `−∞` pad and the sweep writes one trailing `−∞`
//! pad at `width + 1`. The reads of round *d* stay inside
//! `[0, width(src) + 1]` of each source row — i.e. inside the valid
//! cells plus those two pads — because the candidate interval is
//! monotone: `cand_lo(d) ≥ cand_lo(d−1) ≥ cand_lo(d−2)` and
//! `cand_hi(d) ≤ cand_hi(d−1) + 1 ≤ cand_hi(d−2) + 2` (the live
//! interval is a subinterval of the stored row, and the next
//! candidate widens it by at most one on the right). Stale cells
//! beyond the trailing pad — left over from round `d−3` of the same
//! lane or from a previous slot occupant — are therefore never read.
//! The substitution compare runs unconditionally over the whole
//! candidate interval against sentinel-padded sequence copies
//! ([`SEQ_PAD`]): at the interval ends where a sequence index leaves
//! the real symbols, the compared `sd` parent is a pad or canonical
//! dropped cell, and `NEG_INF16 + s ≤ DROP16` for every
//! `|s| ≤ MAX_STEP`, so the compare's outcome there is never
//! observable.
//!
//! ## Bit-identity is still the contract
//!
//! Exactly as for the intra-antidiagonal kernels, every task's
//! [`AlignOutput`] (result *and* every [`AlignStats`] field) and
//! every [`BandPolicy::Exact`] error must match what the scalar
//! reference [`xdrop2::align_views_ty`] produces for that task on a
//! fresh workspace. Lanes that cannot be proven exact (overflow) are
//! re-run through that reference, so the contract holds by
//! construction on the rerun path and by the guard-band argument on
//! the fast path. Configurations the `i16` domain cannot model at
//! all (matrix scorers, score steps above [`MAX_STEP`], positive gap
//! penalties) take a per-task scalar fallback, counted in
//! [`BatchReport::fallbacks`].

use crate::error::{AlignError, Result};
use crate::scoring::{MatchMismatch, Scorer};
use crate::seqview::{Fwd, Rev};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::xdrop2::{self, BandPolicy, Workspace};
use crate::XDropParams;

/// `-∞` sentinel of the `i16` lane domain — `i16::MIN / 4`, mirroring
/// [`crate::NEG_INF`]'s headroom argument: adding a gap penalty (or
/// several) to a dropped cell stays far from the representable edge.
pub const NEG_INF16: i16 = i16::MIN / 4;

/// Dropped-cell threshold of the `i16` domain (`NEG_INF16 / 2`),
/// mirroring [`crate::is_dropped`].
const DROP16: i16 = NEG_INF16 / 2;

/// Largest per-round score step the `i16` lane path accepts:
/// `|match|`, `|mismatch|` and `|gap|` must all be at most this for a
/// batch to run in `i16` lanes (otherwise the whole batch takes the
/// scalar fallback). One antidiagonal round changes a cell by exactly
/// one `sim` or one `gap` application, so this bounds how far a value
/// can move per round — the quantity the guard band is built from.
pub const MAX_STEP: i32 = 1024;

/// Upper guard of the live-value band: `i16::MAX − MAX_STEP`.
///
/// Soundness of the fast path: by induction, while every *live*
/// stored value lies strictly inside `(LOW_GUARD, HIGH_GUARD)`, the
/// next round's candidates derived from live parents lie strictly
/// inside `(DROP16, i16::MAX)` — so the saturating adds cannot
/// actually saturate (the value is exact, equal to the `i32`
/// reference's) and cannot be misclassified as dropped (dropped is
/// `≤ DROP16`). Dropped cells are stored as the canonical
/// [`NEG_INF16`]; with `gap ≤ 0` their derived sums stay `≤ DROP16`
/// and lose every `max` against a live value, exactly like the `i32`
/// sentinel. The first round a live value lands outside the guard
/// band it is still computed exactly — the lane is flagged overflowed
/// *that* round and re-run in `i32`, before any inexact round can
/// happen.
const HIGH_GUARD: i32 = i16::MAX as i32 - MAX_STEP;

/// Lower guard of the live-value band: `DROP16 + MAX_STEP`.
const LOW_GUARD: i32 = DROP16 as i32 + MAX_STEP;

/// A directional byte-slice view of one task sequence — the owned
/// (lifetime-bound, object-safe-free) analogue of
/// [`crate::seqview::SeqView`] the batch API takes, so a batch can
/// mix left extensions (reverse access) and right extensions
/// (forward access) in the same lane group.
#[derive(Debug, Clone, Copy)]
pub enum TaskView<'a> {
    /// Forward access: logical index `i` is physical index `i`.
    Fwd(&'a [u8]),
    /// Reverse access: logical index `i` is physical `len − 1 − i`.
    Rev(&'a [u8]),
}

impl TaskView<'_> {
    /// Number of symbols in the view.
    #[inline(always)]
    pub fn len(&self) -> usize {
        match self {
            TaskView::Fwd(s) | TaskView::Rev(s) => s.len(),
        }
    }

    /// Whether the view is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The symbol at logical position `idx` (`idx < len()`).
    #[inline(always)]
    pub fn at(&self, idx: usize) -> u8 {
        match self {
            TaskView::Fwd(s) => s[idx],
            TaskView::Rev(s) => s[s.len() - 1 - idx],
        }
    }

    /// Forward-order copy: physical index `i` holds logical symbol
    /// `i`, so the staging hot loop indexes a plain slice instead of
    /// branching on the direction per cell.
    fn materialize(&self) -> Vec<u8> {
        match self {
            TaskView::Fwd(s) => s.to_vec(),
            TaskView::Rev(s) => s.iter().rev().copied().collect(),
        }
    }

    /// Reverse-order copy: physical index `t` holds logical symbol
    /// `len − 1 − t`. On antidiagonal `d` the substitution compare
    /// reads logical `H` symbol `d − i − 1` for cell `i`; against
    /// this copy that is physical index `len − d + i` — *forward* in
    /// `i` — so the compare runs over two forward slices and
    /// autovectorizes.
    fn materialize_rev(&self) -> Vec<u8> {
        match self {
            TaskView::Fwd(s) => s.iter().rev().copied().collect(),
            TaskView::Rev(s) => s.to_vec(),
        }
    }
}

/// One alignment task of a batch: an `H` view × `V` view extension.
#[derive(Debug, Clone, Copy)]
pub struct BatchTask<'a> {
    /// Horizontal sequence view.
    pub h: TaskView<'a>,
    /// Vertical sequence view.
    pub v: TaskView<'a>,
}

/// What the batched kernel did with a batch — lane configuration,
/// bucketing, occupancy/staging counters, and how many lanes left the
/// `i16` fast path.
///
/// The occupancy and staging counters are *observations*, never
/// inputs: no per-task value depends on them, which is why extending
/// the report cannot perturb the bit-identity contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BatchReport {
    /// Lane count used (vector width in `i16` cells).
    pub lanes: usize,
    /// Register backend the fused sweep ran at ([`SweepBackend`];
    /// results are backend-independent, only wall-clock moves).
    pub sweep_backend: SweepBackend,
    /// Nominal length-bucket count, `⌈tasks / lanes⌉` — the number of
    /// lane groups the pre-refill kernel would have executed (kept
    /// for report compatibility; with mid-flight refill the engine
    /// runs one continuous pack).
    pub buckets: usize,
    /// Lanes that overflowed the `i16` guard band and were re-run
    /// through the scalar `i32` reference.
    pub reruns: usize,
    /// Tasks that never entered the `i16` path (ineligible scorer or
    /// score magnitudes) and ran the scalar reference directly.
    pub fallbacks: usize,
    /// Engine rounds that swept at least one lane.
    pub rounds: u64,
    /// Sum over rounds of lanes swept that round — the occupancy
    /// numerator ([`BatchReport::occupancy`]).
    pub lane_rounds: u64,
    /// `i16` cells scored in lanes (Σ of swept candidate widths; the
    /// overflow-rerun and fallback cells are not lane cells).
    pub lane_cells: u64,
    /// Bytes copied into staging state: materialized sequence copies,
    /// arena row resets at lane entry, and arena-growth row moves.
    /// Per-round staging is zero — operands are views of persistent
    /// rows and the substitution compare is fused into the sweep. The
    /// pre-refill kernel's equivalent figure was ≈14 B per staged
    /// slot (seven operand buffers re-filled per round); see
    /// [`BatchReport::staged_bytes_per_cell`].
    pub staged_bytes: u64,
    /// Mid-flight slot refills: lanes entered while the pack was
    /// already live (0 in no-refill mode, where slots only refill
    /// after the whole pack drains).
    pub refills: usize,
    /// Tasks whose sequences were materialized into forward/reverse
    /// copies — exactly once per task entering the `i16` path; rerun
    /// and fallback paths run on the original views and never
    /// re-materialize.
    pub materializations: usize,
    /// Nanoseconds in the per-round prologue (interval geometry and
    /// band policy; 0 unless the `batch-profile` feature is enabled).
    /// Profiling laps the clock inside the burst loop, so enabling
    /// the feature costs real time — the split stays meaningful, the
    /// total does not.
    pub prologue_ns: u64,
    /// Nanoseconds staging persistent lane state — refill-time
    /// sequence materialization and row resets, plus arena growth (0
    /// unless profiled). There is no per-round staging to attribute.
    pub stage_ns: u64,
    /// Nanoseconds in the fused sweep (substitution compare + DP +
    /// cutoff + reductions; 0 unless profiled).
    pub sweep_ns: u64,
    /// Nanoseconds in the positional scans, stats bookkeeping, and
    /// lane finalization including overflow reruns (0 unless
    /// profiled).
    pub reduce_ns: u64,
}

impl BatchReport {
    /// Mean lane occupancy: swept lane-rounds over `rounds × lanes`.
    /// 1.0 means every slot swept a live task every round; the
    /// pre-refill kernel drained towards `1/lanes` at each bucket
    /// tail. 0.0 when the engine never ran a round.
    pub fn occupancy(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.lane_rounds as f64 / (self.rounds * self.lanes as u64) as f64
        }
    }

    /// Staging traffic per scored lane cell, in bytes
    /// (`staged_bytes / lane_cells`; 0.0 when no lane cells ran).
    pub fn staged_bytes_per_cell(&self) -> f64 {
        if self.lane_cells == 0 {
            0.0
        } else {
            self.staged_bytes as f64 / self.lane_cells as f64
        }
    }
}

/// Runtime lane-width detection: how many `i16` cells one vector
/// register holds on this host — 32 under AVX-512BW, 16 under AVX2,
/// 8 under SSE4.1/NEON, and a generic 8 elsewhere (the flat staged
/// pass still autovectorizes to whatever the target offers).
#[cfg(target_arch = "x86_64")]
pub fn lane_width() -> usize {
    if std::arch::is_x86_feature_detected!("avx512bw") {
        32
    } else if std::arch::is_x86_feature_detected!("avx2") {
        16
    } else {
        8
    }
}

/// Runtime lane-width detection (aarch64): NEON holds 8 × `i16`.
#[cfg(target_arch = "aarch64")]
pub fn lane_width() -> usize {
    8
}

/// Runtime lane-width detection (other targets): generic 8.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn lane_width() -> usize {
    8
}

/// Environment variable forcing the fused-sweep register backend,
/// overriding hardware detection: `generic`, `sse2`, `avx2`,
/// `avx512`, or `auto`. A backend the host cannot run (or an unknown
/// value) produces a loud one-time stderr warning and falls back to
/// detection — never a crash, and never a silent misconfiguration.
/// Resolved once per process and cached; intended for the
/// differential test suites and for per-backend bench rows.
pub const SWEEP_ENV: &str = "XDROP_SWEEP";

/// Which register width the fused `sweep_row` pass runs at.
///
/// All backends execute the identical per-cell arithmetic (saturating
/// `i16` adds, `max` chains, and the X-Drop classification are
/// lanewise-exact operations), so every backend is bit-identical to
/// the scalar reference — the choice moves host wall-clock only.
/// Enforced by `tests/batched_identity.rs`, which runs every backend
/// the host supports through the differential suites.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum SweepBackend {
    /// The portable scalar body ([`sweep_row_generic`]), lanes as far
    /// as the autovectorizer allows.
    #[default]
    Generic,
    /// Explicit 128-bit SSE2 lanes (8 × `i16`) — x86-64 baseline,
    /// always available there.
    Sse2,
    /// Explicit 256-bit AVX2 lanes (16 × `i16`) with
    /// `vpmovmskb`-based classify counting.
    Avx2,
    /// Explicit 512-bit AVX-512BW lanes (32 × `i16`): k-register
    /// masked compare/select classify and masked tail loads/stores,
    /// so ragged row widths need no scalar epilogue.
    Avx512,
}

impl SweepBackend {
    /// Every backend, narrowest first (bench/report ordering).
    pub const ALL: [SweepBackend; 4] = [
        SweepBackend::Generic,
        SweepBackend::Sse2,
        SweepBackend::Avx2,
        SweepBackend::Avx512,
    ];

    /// Stable lower-case name (`generic` / `sse2` / `avx2` /
    /// `avx512`).
    pub fn name(self) -> &'static str {
        match self {
            SweepBackend::Generic => "generic",
            SweepBackend::Sse2 => "sse2",
            SweepBackend::Avx2 => "avx2",
            SweepBackend::Avx512 => "avx512",
        }
    }

    /// Parses a backend name as accepted by [`SWEEP_ENV`]. `auto`
    /// resolves through hardware detection; unknown names are `None`
    /// (the env reader warns loudly and falls back to detection).
    pub fn parse(s: &str) -> Option<SweepBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "generic" => Some(SweepBackend::Generic),
            "sse2" => Some(SweepBackend::Sse2),
            "avx2" => Some(SweepBackend::Avx2),
            "avx512" | "avx512bw" => Some(SweepBackend::Avx512),
            "auto" => Some(SweepBackend::detect()),
            _ => None,
        }
    }

    /// Whether this host can execute the backend.
    pub fn is_supported(self) -> bool {
        match self {
            SweepBackend::Generic => true,
            #[cfg(target_arch = "x86_64")]
            SweepBackend::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SweepBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SweepBackend::Avx512 => std::arch::is_x86_feature_detected!("avx512bw"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every backend this host can execute, narrowest first.
    pub fn supported() -> Vec<SweepBackend> {
        SweepBackend::ALL
            .into_iter()
            .filter(|b| b.is_supported())
            .collect()
    }

    /// Hardware detection: the widest supported backend.
    pub fn detect() -> SweepBackend {
        *SweepBackend::supported()
            .last()
            .expect("generic always runs")
    }

    /// The widest supported backend at or below this one — the
    /// dispatch guarantee that an explicitly requested (or
    /// env-forced) backend never executes intrinsics the host lacks.
    pub fn clamp_to_host(self) -> SweepBackend {
        if self.is_supported() {
            return self;
        }
        let mut best = SweepBackend::Generic;
        for b in SweepBackend::ALL {
            if b == self {
                break;
            }
            if b.is_supported() {
                best = b;
            }
        }
        best
    }

    /// [`SweepBackend::detect`] unless [`SWEEP_ENV`] forces a
    /// backend, resolved once per process and cached. Unknown or
    /// host-unsupported values warn on stderr (once) and fall back —
    /// the silent-fallback failure mode of the historical
    /// `XDROP_KERNEL` reader is explicitly not reproduced here.
    pub fn resolved() -> SweepBackend {
        static RESOLVED: std::sync::OnceLock<SweepBackend> = std::sync::OnceLock::new();
        *RESOLVED.get_or_init(|| match std::env::var(SWEEP_ENV) {
            Ok(v) => match SweepBackend::parse(&v) {
                Some(b) => {
                    let clamped = b.clamp_to_host();
                    if clamped != b {
                        eprintln!(
                            "warning: {SWEEP_ENV}={v} requests the {} sweep backend but this \
                             host cannot run it; using {}",
                            b.name(),
                            clamped.name()
                        );
                    }
                    clamped
                }
                None => {
                    let det = SweepBackend::detect();
                    eprintln!(
                        "warning: unknown {SWEEP_ENV} value {v:?} (expected generic, sse2, \
                         avx2, avx512, or auto); using auto-detected {}",
                        det.name()
                    );
                    det
                }
            },
            Err(_) => SweepBackend::detect(),
        })
    }
}

/// Whether `scorer` can run in `i16` lanes: a plain match/mismatch
/// scheme whose scores fit the guard-band arithmetic. `gap ≤ 0` is
/// required because a positive gap could walk a canonical dropped
/// value back into the live range in `i16` where the `i32` sentinel
/// would have stayed dropped.
fn eligible<S: Scorer>(scorer: &S) -> Option<MatchMismatch> {
    let mm = scorer.as_match_mismatch()?;
    let ok = mm.match_score.abs() <= MAX_STEP
        && mm.mismatch_score.abs() <= MAX_STEP
        && mm.gap_penalty.abs() <= MAX_STEP
        && mm.gap_penalty <= 0;
    ok.then_some(mm)
}

/// Runs one task through the scalar `i32` reference on a fresh
/// workspace — the oracle the batch results are pinned to, and the
/// rerun/fallback path. Operates on the original [`TaskView`] borrows
/// directly: no sequence is materialized here, so a rerun or fallback
/// never repeats the copy a lane already paid for
/// ([`BatchReport::materializations`] counts lane entries only).
fn scalar_task<S: Scorer>(
    task: &BatchTask<'_>,
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> Result<AlignOutput> {
    let mut ws = Workspace::<i32>::new();
    match (task.h, task.v) {
        (TaskView::Fwd(h), TaskView::Fwd(v)) => {
            xdrop2::align_views_ty(&Fwd(h), &Fwd(v), scorer, params, policy, &mut ws)
        }
        (TaskView::Fwd(h), TaskView::Rev(v)) => {
            xdrop2::align_views_ty(&Fwd(h), &Rev(v), scorer, params, policy, &mut ws)
        }
        (TaskView::Rev(h), TaskView::Fwd(v)) => {
            xdrop2::align_views_ty(&Rev(h), &Fwd(v), scorer, params, policy, &mut ws)
        }
        (TaskView::Rev(h), TaskView::Rev(v)) => {
            xdrop2::align_views_ty(&Rev(h), &Rev(v), scorer, params, policy, &mut ws)
        }
    }
}

/// The deterministic task schedule of a batch: indices sorted by
/// descending `|H| + |V|`, tie-broken by **ascending original task
/// index**. The explicit index tiebreak makes the schedule a total
/// order — equal-length tasks always enter lanes in submission order,
/// so bucketing and mid-flight refill are reproducible run to run
/// (and results never depend on the schedule at all; lanes are
/// independent).
pub fn task_order(tasks: &[BatchTask<'_>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_unstable_by_key(|&t| (std::cmp::Reverse(tasks[t].h.len() + tasks[t].v.len()), t));
    order
}

/// Aligns a batch of tasks with the hardware-detected lane width.
///
/// Returns one [`Result`] per task, in task order, plus a
/// [`BatchReport`]. Every outcome is bit-identical to running that
/// task alone through the scalar reference on a fresh workspace.
pub fn align_batch<S: Scorer>(
    tasks: &[BatchTask<'_>],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> (Vec<Result<AlignOutput>>, BatchReport) {
    align_batch_with_lanes(tasks, scorer, params, policy, lane_width())
}

/// [`align_batch`] with an explicit lane count (bench lane sweeps and
/// tests; results never depend on the lane count, only wall-clock
/// does).
pub fn align_batch_with_lanes<S: Scorer>(
    tasks: &[BatchTask<'_>],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    lanes: usize,
) -> (Vec<Result<AlignOutput>>, BatchReport) {
    align_batch_with_opts(tasks, scorer, params, policy, lanes, true)
}

/// [`align_batch_with_lanes`] with mid-flight refill switchable.
///
/// `refill = true` (the default everywhere) refills a vacated lane
/// slot from the pending queue at the top of the next round.
/// `refill = false` only admits tasks when the whole pack has drained
/// — reproducing the strict length-bucket groups of the pre-refill
/// kernel. Both modes produce bit-identical per-task outcomes (each
/// lane's computation is a pure function of its own task); the switch
/// exists so tests can prove exactly that.
pub fn align_batch_with_opts<S: Scorer>(
    tasks: &[BatchTask<'_>],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    lanes: usize,
    refill: bool,
) -> (Vec<Result<AlignOutput>>, BatchReport) {
    align_batch_with_backend(
        tasks,
        scorer,
        params,
        policy,
        lanes,
        refill,
        SweepBackend::resolved(),
    )
}

/// [`align_batch_with_opts`] with the fused-sweep register backend
/// pinned explicitly (differential tests and per-backend bench rows;
/// results never depend on the backend, only wall-clock does). A
/// backend the host cannot execute is clamped to the widest supported
/// one at or below it — the report records what actually ran.
#[allow(clippy::too_many_arguments)]
pub fn align_batch_with_backend<S: Scorer>(
    tasks: &[BatchTask<'_>],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    lanes: usize,
    refill: bool,
    backend: SweepBackend,
) -> (Vec<Result<AlignOutput>>, BatchReport) {
    let lanes = lanes.max(1);
    let backend = backend.clamp_to_host();
    let mut report = BatchReport {
        lanes,
        sweep_backend: backend,
        ..Default::default()
    };
    let mut out: Vec<Option<Result<AlignOutput>>> = (0..tasks.len()).map(|_| None).collect();
    match eligible(scorer) {
        Some(mm) => {
            report.buckets = tasks.len().div_ceil(lanes);
            let order = task_order(tasks);
            run_engine(
                tasks,
                &order,
                &mm,
                params,
                policy,
                lanes,
                refill,
                backend,
                &mut out,
                &mut report,
            );
        }
        None => {
            for (task, slot) in tasks.iter().zip(out.iter_mut()) {
                *slot = Some(scalar_task(task, scorer, params, policy));
                report.fallbacks += 1;
            }
        }
    }
    (
        out.into_iter()
            .map(|slot| slot.expect("every task resolved"))
            .collect(),
        report,
    )
}

/// Per-lane DP state — one task's complete scalar-reference state
/// machine, advanced one antidiagonal per round. Lanes are fully
/// independent: the only shared structure is the arena allocation,
/// in which each lane owns its own rows.
struct Lane {
    task: usize,
    /// Reverse-order copy of the `H` view (see
    /// [`TaskView::materialize_rev`] for why reversed) with one
    /// [`SEQ_PAD`] sentinel appended at index `m`; made once at lane
    /// entry and reused for every round. On antidiagonal `d`, cell
    /// `i` reads `hpad[m + i − d]` — in bounds for the whole
    /// candidate interval (`i ≤ d` geometrically, with `i = d`
    /// landing on the sentinel).
    hpad: Vec<u8>,
    /// Forward-order copy of the `V` view with one [`SEQ_PAD`]
    /// sentinel *prepended*: cell `i` reads `vpad[i]` (logical
    /// `V[i − 1]`), with `i = 0` landing on the sentinel.
    vpad: Vec<u8>,
    m: usize,
    n: usize,
    /// The lane's own antidiagonal counter. Refill desynchronizes
    /// lane rounds, so the arena ring rotation is driven by this,
    /// never by a global round number.
    d: usize,
    /// `cand_lo` of the row each arena plane holds for this lane.
    bases: [usize; 3],
    /// Width of the row each arena plane holds (0 = no row yet).
    widths: [usize; 3],
    /// Virtual workspace capacity with fresh-workspace semantics:
    /// starts at `δ_b`, doubles under [`BandPolicy::Grow`] exactly as
    /// `align_views_ty` grows a fresh [`Workspace`].
    cap: usize,
    best: AlignResult,
    t_best: i32,
    live_lo: usize,
    live_hi: usize,
    prev_best_i: usize,
    stats: AlignStats,
    state: LaneState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LaneState {
    /// Still sweeping antidiagonals.
    Active,
    /// Terminated normally (geometry exhausted, band went dead, or
    /// the antidiagonal cap hit).
    Done,
    /// A live value escaped the `i16` guard band: discard and re-run
    /// through the `i32` reference.
    Overflowed,
    /// Terminated with the scalar reference's error.
    Failed(AlignError),
}

/// Sequence pad sentinel: `hpad[m]` and `vpad[0]` hold this value so
/// the fused substitution compare runs over the full candidate
/// interval with no per-cell bounds logic. Correctness does not
/// depend on the sentinel's value at all: a pad byte is only read for
/// cells whose diagonal (`sd`) parent is a `−∞` pad or canonical
/// dropped cell — where the compare's outcome is unobservable (see
/// the module padding invariants) — and the two pads can never face
/// *each other* (`i = 0` and `i = d` coincide only at `d = 0`, before
/// the first round).
const SEQ_PAD: u8 = u8::MAX;

impl Lane {
    /// Builds the lane state for `tasks[task]` — the one place a
    /// task's sequences are materialized.
    fn enter(task: usize, t: &BatchTask<'_>, delta_b: usize) -> Lane {
        let (h, v) = (t.h, t.v);
        let (m, n) = (h.len(), v.len());
        let mut hpad = h.materialize_rev();
        hpad.push(SEQ_PAD);
        let mut vpad = Vec::with_capacity(n + 1);
        vpad.push(SEQ_PAD);
        vpad.extend_from_slice(&v.materialize());
        Lane {
            task,
            hpad,
            vpad,
            m,
            n,
            d: 0,
            bases: [0; 3],
            // Plane 0 (= round 0 mod 3) holds the seed row H[0] =
            // {cell 0} after the arena rows are reset.
            widths: [1, 0, 0],
            cap: delta_b,
            best: AlignResult::empty(),
            t_best: 0,
            live_lo: 0,
            live_hi: 0,
            prev_best_i: 0,
            stats: AlignStats {
                cells_computed: 1,
                delta_w: 1,
                delta: m.min(n) + 1,
                work_bytes: 2 * delta_b * CELL_BYTES,
                ..Default::default()
            },
            state: LaneState::Active,
        }
    }
}

/// The `i32` cell size the modeled `work_bytes` are stated in: the
/// device kernel's footprint is defined by the reference cell type,
/// not by this host kernel's internal `i16` storage — bit-identity
/// of [`AlignStats::work_bytes`] demands the reference's accounting.
const CELL_BYTES: usize = std::mem::size_of::<i32>();

/// Per-phase wall-clock accumulation for [`BatchReport`], compiled to
/// nothing unless the `batch-profile` cargo feature is on (the fast
/// path must not pay two `Instant::now` calls per phase by default).
#[cfg(feature = "batch-profile")]
struct PhaseTimer {
    last: std::time::Instant,
}

#[cfg(feature = "batch-profile")]
impl PhaseTimer {
    #[inline(always)]
    fn start() -> Self {
        PhaseTimer {
            last: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since the previous lap (or start).
    #[inline(always)]
    fn lap(&mut self) -> u64 {
        let now = std::time::Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        ns
    }
}

/// Profiling disabled: a zero-sized no-op timer.
#[cfg(not(feature = "batch-profile"))]
struct PhaseTimer;

#[cfg(not(feature = "batch-profile"))]
impl PhaseTimer {
    #[inline(always)]
    fn start() -> Self {
        PhaseTimer
    }

    #[inline(always)]
    fn lap(&mut self) -> u64 {
        0
    }
}

/// Doubles (at least) the arena row pitch, preserving every occupied
/// lane's three rows. Unoccupied rows and the grown tails are reset
/// to the `−∞` sentinel.
fn grow_arena(
    planes: &mut [Vec<i16>; 3],
    slots: &[Option<Lane>],
    k: usize,
    stride: &mut usize,
    min_stride: usize,
    report: &mut BatchReport,
) {
    let old = *stride;
    let new_stride = min_stride.max(2 * old);
    for p in planes.iter_mut() {
        let mut np = vec![NEG_INF16; k * new_stride];
        for (s, slot) in slots.iter().enumerate() {
            if slot.is_some() {
                np[s * new_stride..s * new_stride + old]
                    .copy_from_slice(&p[s * old..(s + 1) * old]);
                report.staged_bytes += 2 * old as u64;
            }
        }
        *p = np;
    }
    *stride = new_stride;
}

/// Rounds a lane advances per engine iteration before control returns
/// to the pack loop. Large enough to amortize per-lane fixed costs
/// (slot dispatch, plane selection, lane-state loads and stores) over
/// many rounds — the live bands are only a few vectors wide, so those
/// fixed costs, not arithmetic, would otherwise bound the round rate
/// — and small enough that a vacated slot waits at most this many
/// rounds for its refill, which is well under 2% of the round count
/// of any task long enough for occupancy to matter.
const BURST_ROUNDS: usize = 64;

/// Runs the whole batch through one persistent lane pack: the scalar
/// reference's control flow replicated per lane over the three-plane
/// rolling arena, with terminated lanes compacted out and their slots
/// refilled from `order`. Lanes advance in [`BURST_ROUNDS`]-round
/// bursts ([`lane_burst`]); lanes are pure functions of their own
/// task, so neither burst nor refill scheduling is observable in any
/// result.
#[allow(clippy::too_many_arguments)]
fn run_engine(
    tasks: &[BatchTask<'_>],
    order: &[usize],
    mm: &MatchMismatch,
    params: XDropParams,
    policy: BandPolicy,
    k: usize,
    refill: bool,
    backend: SweepBackend,
    out: &mut [Option<Result<AlignOutput>>],
    report: &mut BatchReport,
) {
    let delta_b = policy.delta_b();
    if delta_b == 0 {
        for &t in order {
            out[t] = Some(Err(AlignError::InvalidConfig("δ_b must be nonzero")));
        }
        return;
    }

    // Arena: 3 planes × (k rows of `stride` i16 cells). Row layout:
    // slot 0 = leading −∞ pad, slots 1..=width = the stored row,
    // slot width+1 = trailing −∞ pad (see the module docs for the
    // bounds argument). `stride ≥ max lane cap + 2` is maintained by
    // `grow_arena`.
    let mut stride = delta_b + 2;
    let mut planes: [Vec<i16>; 3] = std::array::from_fn(|_| vec![NEG_INF16; k * stride]);
    let mut slots: Vec<Option<Lane>> = (0..k).map(|_| None).collect();
    let mut next = 0usize;

    loop {
        let mut timer = PhaseTimer::start();

        // ---- Refill: admit pending tasks into vacated slots. In
        // no-refill mode only a fully drained pack admits (strict
        // length buckets, as before this engine existed).
        if next < order.len() {
            let pack_live = slots.iter().any(Option::is_some);
            if refill || !pack_live {
                for (s, slot) in slots.iter_mut().enumerate() {
                    if slot.is_none() && next < order.len() {
                        let t = order[next];
                        next += 1;
                        let lane = Lane::enter(t, &tasks[t], delta_b);
                        let rb = s * stride;
                        for p in planes.iter_mut() {
                            p[rb..rb + stride].fill(NEG_INF16);
                        }
                        // Seed cell H[0][0] = 0 in plane 0, slot 1.
                        planes[0][rb + 1] = 0;
                        report.materializations += 1;
                        report.staged_bytes += (lane.m + lane.n) as u64 + 3 * 2 * stride as u64;
                        if pack_live {
                            report.refills += 1;
                        }
                        *slot = Some(lane);
                    }
                }
            }
        }
        report.stage_ns += timer.lap();
        if slots.iter().all(Option::is_none) {
            break;
        }

        // ---- Bursts: advance every occupied lane up to
        // [`BURST_ROUNDS`] rounds. A lane stops early only to
        // terminate or to request a wider arena pitch (Grow policy),
        // in which case it resumes — with no state committed for the
        // paused round — after the re-pitch below.
        let mut max_exec = 0u64;
        let mut need_stride = 0usize;
        for (s, slot) in slots.iter_mut().enumerate() {
            let Some(lane) = slot.as_mut() else { continue };
            let exec = lane_burst(
                lane,
                &mut planes,
                s * stride,
                stride,
                mm,
                params,
                policy,
                backend,
                &mut need_stride,
                report,
            );
            report.lane_rounds += exec;
            max_exec = max_exec.max(exec);
        }
        // The engine iteration spans `max_exec` logical rounds; a lane
        // that terminated earlier leaves its slot idle for the rest of
        // the iteration (the occupancy denominator sees that).
        report.rounds += max_exec;
        timer.lap(); // burst time is attributed inside `lane_burst`

        // A lane's band outgrew the row pitch (Grow policy): re-pitch
        // the arena, then let the paused lane re-run its prologue.
        if need_stride > stride {
            grow_arena(&mut planes, &slots, k, &mut stride, need_stride, report);
        }
        report.stage_ns += timer.lap();

        // ---- Compact: finalize terminated lanes and vacate their
        // slots for the next iteration's refill.
        for slot in slots.iter_mut() {
            let finished = slot
                .as_ref()
                .is_some_and(|lane| !matches!(lane.state, LaneState::Active));
            if !finished {
                continue;
            }
            let lane = slot.take().expect("checked occupied");
            out[lane.task] = Some(match lane.state {
                LaneState::Done => Ok(AlignOutput {
                    result: lane.best,
                    stats: lane.stats,
                }),
                LaneState::Overflowed => {
                    report.reruns += 1;
                    scalar_task(&tasks[lane.task], mm, params, policy)
                }
                LaneState::Failed(e) => Err(e),
                LaneState::Active => unreachable!("finished lanes are not active"),
            });
        }
        report.reduce_ns += timer.lap();
    }
}

/// [`LOW_GUARD`] in the `i16` domain, for in-register guard tests.
/// The cast is exact: `DROP16 + MAX_STEP = −3072` is well inside
/// `i16` range.
#[allow(clippy::cast_possible_truncation)]
const LOW_GUARD16: i16 = LOW_GUARD as i16;

/// Everything one fused-sweep row hands back to the reduce step.
///
/// `low_hit` replaces the old live-minimum reduction: the reduce step
/// only ever compared that minimum against [`LOW_GUARD`], so the
/// sweep now answers the question directly ("did any kept cell land
/// at or under the guard?") instead of carrying a horizontal `min`
/// chain per row. `lo_w`/`hi_w` are the first/last kept slots (the
/// next round's live interval) **when the backend's classify masks
/// expose positions for free** (the k-register AVX-512 path); the
/// narrow backends leave the `usize::MAX` sentinel and the reduce
/// step recovers the bounds with [`live_bounds`]' end scans, which
/// are O(1) on the typical almost-fully-live row.
#[derive(Debug, Clone, Copy)]
struct RowSweep {
    /// Row maximum over stored values ([`NEG_INF16`] if none kept).
    mx: i16,
    /// Whether any kept cell is `≤ LOW_GUARD` (≡ old `mn ≤ LOW_GUARD`).
    low_hit: bool,
    /// Cells alive before classification but under the X-Drop
    /// threshold (`stats.cells_dropped` contribution).
    dropped: u64,
    /// First kept slot; `usize::MAX` if none kept or not tracked.
    lo_w: usize,
    /// Last kept slot; meaningless unless `lo_w` is set.
    hi_w: usize,
}

impl RowSweep {
    fn new() -> Self {
        RowSweep {
            mx: NEG_INF16,
            low_hit: false,
            dropped: 0,
            lo_w: usize::MAX,
            hi_w: 0,
        }
    }
}

/// First/last kept slot of a stored row, scanned from both ends.
/// Kept slots are exactly the slots `> DROP16`, so this reproduces
/// the scalar reference's live-interval scans. Caller guarantees at
/// least one kept slot (`mx > DROP16`).
#[inline(always)]
fn live_bounds(row: &[i16]) -> (usize, usize) {
    let mut lo = 0usize;
    while row[lo] <= DROP16 {
        lo += 1;
    }
    let mut hi = row.len() - 1;
    while row[hi] <= DROP16 {
        hi -= 1;
    }
    (lo, hi)
}

/// One row of the fused sweep, scalar: per cell `i = cand_lo + w`,
/// substitution compare, saturating DP `max`, X-Drop classification,
/// and store — with the row maximum, live minimum, and pruned count
/// accumulated in the same pass. The body is branch-free so the
/// autovectorizer can lane it on targets without an explicit backend.
/// This is the reference body; the wide backends lane the identical
/// per-cell arithmetic (saturating adds, `max` chains and the
/// classification are all lanewise-exact operations, so every backend
/// is bit-identical).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn sweep_row_generic(
    r1s: &[i16],
    r2s: &[i16],
    vs: &[u8],
    hs: &[u8],
    orow: &mut [i16],
    from: usize,
    width: usize,
    mat16: i16,
    mis16: i16,
    gap16: i16,
    thr16: i16,
    mx: &mut i16,
    mn: &mut i16,
    dropped: &mut u64,
) {
    for w in from..width {
        let simw = if vs[w] == hs[w] { mat16 } else { mis16 };
        let diag = r2s[w].saturating_add(simw);
        let up = r1s[w].saturating_add(gap16);
        let lft = r1s[w + 1].saturating_add(gap16);
        let r = diag.max(lft).max(up);
        let alive = r > DROP16;
        let kept = alive & (r >= thr16);
        let v = if kept { r } else { NEG_INF16 };
        orow[w + 1] = v;
        *dropped += u64::from(alive & !kept);
        *mx = (*mx).max(v);
        *mn = (*mn).min(if kept { r } else { i16::MAX });
    }
}

/// One row of the fused sweep over explicit SSE2 `i16` lanes — SSE2
/// is x86-64 baseline, so this backend is always available. Eight
/// cells per step: byte compare → select, three `paddsw`, two
/// `pmaxsw`, classification by mask, and the row max / low-guard hit
/// / pruned count reduced in-register (the count via `-=` of the
/// all-ones mask, flushed to the wide accumulator every 2¹⁶ cells so
/// the `i16` segment counters cannot wrap). The autovectorizer
/// refused this factor on its own: the `u64` count accumulator pins
/// loop-wide vectorization at two lanes, which is why the kernel
/// lanes the body by hand exactly like [`crate::kernel`]'s `isa`
/// modules do.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[inline]
fn sweep_row_sse2(
    r1s: &[i16],
    r2s: &[i16],
    vs: &[u8],
    hs: &[u8],
    orow: &mut [i16],
    width: usize,
    mat16: i16,
    mis16: i16,
    gap16: i16,
    thr16: i16,
) -> RowSweep {
    use std::arch::x86_64::*;
    debug_assert!(r1s.len() > width && r2s.len() >= width);
    debug_assert!(vs.len() >= width && hs.len() >= width && orow.len() >= width + 2);
    let mut acc = RowSweep::new();
    let vect = width & !7;
    // SAFETY: every load reads at most 16 B ending at index `w + 8`
    // of `r2s`/`vs`/`hs` (length ≥ `width ≥ vect ≥ w + 8`) or
    // `w + 9` of `r1s` (length ≥ `width + 1`); the store writes
    // `orow[w + 1 .. w + 9]` (length ≥ `width + 2 ≥ w + 10`). SSE2 is
    // unconditionally available on `x86_64`.
    unsafe {
        let vmat = _mm_set1_epi16(mat16);
        let vmis = _mm_set1_epi16(mis16);
        let vgap = _mm_set1_epi16(gap16);
        let vthr = _mm_set1_epi16(thr16);
        let vdrop = _mm_set1_epi16(DROP16);
        let vneg = _mm_set1_epi16(NEG_INF16);
        let vlow = _mm_set1_epi16(LOW_GUARD16);
        let zero = _mm_setzero_si128();
        let mut vmx = vneg;
        let mut vlowacc = zero;
        let mut w = 0usize;
        while w < vect {
            let seg = (w + (1 << 16)).min(vect);
            let mut dcnt = zero;
            while w < seg {
                let v16 = _mm_unpacklo_epi8(_mm_loadl_epi64(vs.as_ptr().add(w).cast()), zero);
                let h16 = _mm_unpacklo_epi8(_mm_loadl_epi64(hs.as_ptr().add(w).cast()), zero);
                let eq = _mm_cmpeq_epi16(v16, h16);
                let sim = _mm_or_si128(_mm_and_si128(eq, vmat), _mm_andnot_si128(eq, vmis));
                let diag = _mm_adds_epi16(_mm_loadu_si128(r2s.as_ptr().add(w).cast()), sim);
                let up = _mm_adds_epi16(_mm_loadu_si128(r1s.as_ptr().add(w).cast()), vgap);
                let lft = _mm_adds_epi16(_mm_loadu_si128(r1s.as_ptr().add(w + 1).cast()), vgap);
                let r = _mm_max_epi16(diag, _mm_max_epi16(lft, up));
                let alive = _mm_cmpgt_epi16(r, vdrop);
                let below = _mm_cmpgt_epi16(vthr, r); // r < thr16
                let kept = _mm_andnot_si128(below, alive);
                let stored = _mm_or_si128(_mm_and_si128(kept, r), _mm_andnot_si128(kept, vneg));
                _mm_storeu_si128(orow.as_mut_ptr().add(w + 1).cast(), stored);
                dcnt = _mm_sub_epi16(dcnt, _mm_and_si128(alive, below));
                vmx = _mm_max_epi16(vmx, stored);
                // kept & (r ≤ LOW_GUARD) ≡ kept & !(r > LOW_GUARD).
                vlowacc = _mm_or_si128(vlowacc, _mm_andnot_si128(_mm_cmpgt_epi16(r, vlow), kept));
                w += 8;
            }
            let pair = _mm_madd_epi16(dcnt, _mm_set1_epi16(1));
            let s1 = _mm_add_epi32(pair, _mm_shuffle_epi32(pair, 0x4E));
            let s2 = _mm_add_epi32(s1, _mm_shuffle_epi32(s1, 0xB1));
            acc.dropped += _mm_cvtsi128_si32(s2) as u32 as u64;
        }
        acc.mx = hmax_epi16(vmx);
        acc.low_hit = _mm_movemask_epi8(vlowacc) != 0;
    }
    let mut mn = i16::MAX;
    sweep_row_generic(
        r1s,
        r2s,
        vs,
        hs,
        orow,
        vect,
        width,
        mat16,
        mis16,
        gap16,
        thr16,
        &mut acc.mx,
        &mut mn,
        &mut acc.dropped,
    );
    acc.low_hit |= mn <= LOW_GUARD16;
    acc
}

/// One row of the fused sweep, portable: the scalar body, which the
/// autovectorizer lanes as far as the target allows. The only backend
/// on non-x86 targets; [`SweepBackend::Generic`] everywhere.
#[allow(clippy::too_many_arguments)]
#[inline]
fn sweep_row_portable(
    r1s: &[i16],
    r2s: &[i16],
    vs: &[u8],
    hs: &[u8],
    orow: &mut [i16],
    width: usize,
    mat16: i16,
    mis16: i16,
    gap16: i16,
    thr16: i16,
) -> RowSweep {
    let mut acc = RowSweep::new();
    let mut mn = i16::MAX;
    sweep_row_generic(
        r1s,
        r2s,
        vs,
        hs,
        orow,
        0,
        width,
        mat16,
        mis16,
        gap16,
        thr16,
        &mut acc.mx,
        &mut mn,
        &mut acc.dropped,
    );
    acc.low_hit = mn <= LOW_GUARD16;
    acc
}

/// Horizontal `max` of eight `i16` lanes via the SSE2 shuffle chain.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn hmax_epi16(v: std::arch::x86_64::__m128i) -> i16 {
    use std::arch::x86_64::*;
    // SAFETY: SSE2 is unconditionally available on `x86_64`.
    unsafe {
        let m1 = _mm_max_epi16(v, _mm_shuffle_epi32(v, 0x4E));
        let m2 = _mm_max_epi16(m1, _mm_shuffle_epi32(m1, 0xB1));
        let m3 = _mm_max_epi16(m2, _mm_shufflelo_epi16(m2, 0xB1));
        _mm_cvtsi128_si32(m3) as i16
    }
}

/// One row of the fused sweep over explicit 256-bit AVX2 lanes —
/// the SSE2 algorithm at twice the width, sixteen cells per step,
/// with the pruned-cell count taken per step from `vpmovmskb` of the
/// classify mask (two set bits per pruned `i16` lane) instead of the
/// segmented `i16` counter, so there is no flush cadence to get
/// wrong. The tail (`width & 15` cells) keeps the scalar epilogue.
///
/// Bit-identity: saturating adds, `max` chains, compares, and
/// byte-blend selects are all lanewise-exact, so the row bytes and
/// reductions equal [`sweep_row_generic`]'s.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn sweep_row_avx2(
    r1s: &[i16],
    r2s: &[i16],
    vs: &[u8],
    hs: &[u8],
    orow: &mut [i16],
    width: usize,
    mat16: i16,
    mis16: i16,
    gap16: i16,
    thr16: i16,
) -> RowSweep {
    use std::arch::x86_64::*;
    debug_assert!(r1s.len() > width && r2s.len() >= width);
    debug_assert!(vs.len() >= width && hs.len() >= width && orow.len() >= width + 2);
    let mut acc = RowSweep::new();
    let vect = width & !15;
    // SAFETY (in addition to the caller-proved AVX2 availability):
    // every 32 B load ends at index `w + 16` of `r2s`/`vs`/`hs`
    // (length ≥ `width ≥ vect ≥ w + 16`) or `w + 17` of `r1s` (length
    // ≥ `width + 1`); the 32 B store writes `orow[w + 1 .. w + 17]`
    // (length ≥ `width + 2 ≥ w + 18`). The byte loads read 16 B from
    // `vs`/`hs` ending at `w + 16 ≤ width`.
    unsafe {
        let vmat = _mm256_set1_epi16(mat16);
        let vmis = _mm256_set1_epi16(mis16);
        let vgap = _mm256_set1_epi16(gap16);
        let vthr = _mm256_set1_epi16(thr16);
        let vdrop = _mm256_set1_epi16(DROP16);
        let vneg = _mm256_set1_epi16(NEG_INF16);
        let vlow = _mm256_set1_epi16(LOW_GUARD16);
        let mut vmx = vneg;
        let mut vlowacc = _mm256_setzero_si256();
        let mut dropped = 0u32;
        let mut w = 0usize;
        while w < vect {
            let v16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(vs.as_ptr().add(w).cast()));
            let h16 = _mm256_cvtepu8_epi16(_mm_loadu_si128(hs.as_ptr().add(w).cast()));
            let eq = _mm256_cmpeq_epi16(v16, h16);
            let sim = _mm256_blendv_epi8(vmis, vmat, eq);
            let diag = _mm256_adds_epi16(_mm256_loadu_si256(r2s.as_ptr().add(w).cast()), sim);
            let up = _mm256_adds_epi16(_mm256_loadu_si256(r1s.as_ptr().add(w).cast()), vgap);
            let lft = _mm256_adds_epi16(_mm256_loadu_si256(r1s.as_ptr().add(w + 1).cast()), vgap);
            let r = _mm256_max_epi16(diag, _mm256_max_epi16(lft, up));
            let alive = _mm256_cmpgt_epi16(r, vdrop);
            let below = _mm256_cmpgt_epi16(vthr, r); // r < thr16
            let kept = _mm256_andnot_si256(below, alive);
            let stored = _mm256_blendv_epi8(vneg, r, kept);
            _mm256_storeu_si256(orow.as_mut_ptr().add(w + 1).cast(), stored);
            let pruned = _mm256_and_si256(alive, below);
            // Each pruned i16 lane contributes two set mask bytes.
            dropped += (_mm256_movemask_epi8(pruned) as u32).count_ones() / 2;
            vmx = _mm256_max_epi16(vmx, stored);
            // kept & (r ≤ LOW_GUARD) ≡ kept & !(r > LOW_GUARD).
            vlowacc = _mm256_or_si256(
                vlowacc,
                _mm256_andnot_si256(_mm256_cmpgt_epi16(r, vlow), kept),
            );
            w += 16;
        }
        acc.dropped = u64::from(dropped);
        acc.mx = hmax_epi16(_mm_max_epi16(
            _mm256_castsi256_si128(vmx),
            _mm256_extracti128_si256(vmx, 1),
        ));
        acc.low_hit = _mm256_movemask_epi8(vlowacc) != 0;
    }
    let mut mn = i16::MAX;
    sweep_row_generic(
        r1s,
        r2s,
        vs,
        hs,
        orow,
        vect,
        width,
        mat16,
        mis16,
        gap16,
        thr16,
        &mut acc.mx,
        &mut mn,
        &mut acc.dropped,
    );
    acc.low_hit |= mn <= LOW_GUARD16;
    acc
}

/// One row of the fused sweep over explicit 512-bit AVX-512BW lanes,
/// thirty-two cells per step, using the native facilities the
/// narrower backends emulate:
///
/// * the live/drop classify is two k-register compares
///   (`vpcmpgtw`/`vpcmpw`) combined with mask arithmetic — no wide
///   and/andnot/blend chains;
/// * the select of stored values is one `vpblendmw` under the kept
///   mask, the pruned count is a `popcnt` of `alive & below`, and the
///   first/last kept slots and the low-guard hit come straight from
///   the k-registers;
/// * ragged row widths need **no scalar epilogue**: the final partial
///   step runs under the tail mask `(1 << rem) − 1` with masked
///   loads (`vmovdqu16{z}`) and a masked store, so out-of-bounds
///   cells are never read or written and masked lanes stay neutral in
///   the reductions (max under `k`, positional masks under
///   `kept ⊆ k`).
///
/// Bit-identity: every operation is lanewise-exact and masked lanes
/// contribute nothing, so the row bytes and reductions equal
/// [`sweep_row_generic`]'s.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(clippy::too_many_arguments)]
#[inline]
unsafe fn sweep_row_avx512(
    r1s: &[i16],
    r2s: &[i16],
    vs: &[u8],
    hs: &[u8],
    orow: &mut [i16],
    width: usize,
    mat16: i16,
    mis16: i16,
    gap16: i16,
    thr16: i16,
) -> RowSweep {
    use std::arch::x86_64::*;
    debug_assert!(r1s.len() > width && r2s.len() >= width);
    debug_assert!(vs.len() >= width && hs.len() >= width && orow.len() >= width + 2);
    let mut acc = RowSweep::new();
    // SAFETY (in addition to the caller-proved AVX-512BW
    // availability): every load and the store are masked by
    // `k = (1 << min(rem, 32)) − 1`, so lane `j` is touched only when
    // `w + j < width` — `r2s`/`vs`/`hs` indices stay `< width ≤ len`,
    // `r1s` indices stay `< width + 1 ≤ len`, and the store writes
    // `orow[w + 1 + j]` with `w + 1 + j ≤ width < len`. Masked lanes
    // of `vmovdqu16{z}`/`vmovdqu8{z}` perform no memory access.
    unsafe {
        let vmat = _mm512_set1_epi16(mat16);
        let vmis = _mm512_set1_epi16(mis16);
        let vgap = _mm512_set1_epi16(gap16);
        let vthr = _mm512_set1_epi16(thr16);
        let vdrop = _mm512_set1_epi16(DROP16);
        let vneg = _mm512_set1_epi16(NEG_INF16);
        let vlow = _mm512_set1_epi16(LOW_GUARD16);
        let mut vmx = vneg;
        let mut lowacc: __mmask32 = 0;
        let mut dropped = 0u32;
        let mut w = 0usize;
        while w < width {
            let rem = width - w;
            let k: __mmask32 = if rem >= 32 { !0u32 } else { (1u32 << rem) - 1 };
            let vb = _mm512_maskz_loadu_epi8(k as u64, vs.as_ptr().add(w).cast());
            let v16 = _mm512_cvtepu8_epi16(_mm512_castsi512_si256(vb));
            let hb = _mm512_maskz_loadu_epi8(k as u64, hs.as_ptr().add(w).cast());
            let h16 = _mm512_cvtepu8_epi16(_mm512_castsi512_si256(hb));
            let eqk = _mm512_cmpeq_epi16_mask(v16, h16);
            let sim = _mm512_mask_blend_epi16(eqk, vmis, vmat);
            let diag =
                _mm512_adds_epi16(_mm512_maskz_loadu_epi16(k, r2s.as_ptr().add(w).cast()), sim);
            let up = _mm512_adds_epi16(
                _mm512_maskz_loadu_epi16(k, r1s.as_ptr().add(w).cast()),
                vgap,
            );
            let lft = _mm512_adds_epi16(
                _mm512_maskz_loadu_epi16(k, r1s.as_ptr().add(w + 1).cast()),
                vgap,
            );
            let r = _mm512_max_epi16(diag, _mm512_max_epi16(lft, up));
            let alive = _mm512_cmpgt_epi16_mask(r, vdrop) & k;
            let below = _mm512_cmplt_epi16_mask(r, vthr);
            let kept = alive & !below;
            let stored = _mm512_mask_blend_epi16(kept, vneg, r);
            _mm512_mask_storeu_epi16(orow.as_mut_ptr().add(w + 1).cast(), k, stored);
            dropped += (alive & below).count_ones();
            vmx = _mm512_mask_max_epi16(vmx, k, vmx, stored);
            lowacc |= _mm512_mask_cmple_epi16_mask(kept, r, vlow);
            if kept != 0 {
                if acc.lo_w == usize::MAX {
                    acc.lo_w = w + kept.trailing_zeros() as usize;
                }
                acc.hi_w = w + 31 - kept.leading_zeros() as usize;
            }
            w += 32;
        }
        acc.dropped = u64::from(dropped);
        let mx256 = _mm256_max_epi16(
            _mm512_castsi512_si256(vmx),
            _mm512_extracti64x4_epi64(vmx, 1),
        );
        acc.mx = hmax_epi16(_mm_max_epi16(
            _mm256_castsi256_si128(mx256),
            _mm256_extracti128_si256(mx256, 1),
        ));
        acc.low_hit = lowacc != 0;
    }
    acc
}

/// One fused-sweep row at the selected register backend. The `unsafe`
/// intrinsic bodies are sound to call here because
/// [`align_batch_with_backend`] clamps the backend to host support
/// before the engine runs a single round. Marked `#[inline(always)]`
/// so the `backend` match folds away inside the per-backend
/// [`lane_burst`] bodies, letting the intrinsic sweeps inline into
/// their feature-matched burst loop (which hoists the broadcast
/// constants out of the round loop).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn sweep_row(
    backend: SweepBackend,
    r1s: &[i16],
    r2s: &[i16],
    vs: &[u8],
    hs: &[u8],
    orow: &mut [i16],
    width: usize,
    mat16: i16,
    mis16: i16,
    gap16: i16,
    thr16: i16,
) -> RowSweep {
    #[cfg(target_arch = "x86_64")]
    match backend {
        // SAFETY: `clamp_to_host` admitted the backend, so the
        // required target features were runtime-detected.
        SweepBackend::Avx512 => unsafe {
            sweep_row_avx512(r1s, r2s, vs, hs, orow, width, mat16, mis16, gap16, thr16)
        },
        // SAFETY: as above — AVX2 was runtime-detected.
        SweepBackend::Avx2 => unsafe {
            sweep_row_avx2(r1s, r2s, vs, hs, orow, width, mat16, mis16, gap16, thr16)
        },
        SweepBackend::Sse2 => {
            sweep_row_sse2(r1s, r2s, vs, hs, orow, width, mat16, mis16, gap16, thr16)
        }
        SweepBackend::Generic => {
            sweep_row_portable(r1s, r2s, vs, hs, orow, width, mat16, mis16, gap16, thr16)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend;
        sweep_row_portable(r1s, r2s, vs, hs, orow, width, mat16, mis16, gap16, thr16)
    }
}

/// First slot of `row` equal to `mx` — the scalar reference's
/// first-maximum-wins argmax. Caller guarantees `mx` is present.
fn row_argmax_generic(row: &[i16], mx: i16) -> usize {
    row.iter().position(|&v| v == mx).expect("live max present")
}

/// [`row_argmax_generic`] over 512-bit masked `vpcmpeqw`: one compare
/// per 32 cells, position read off the k-register. After the fused
/// sweep absorbed the live-interval scans, this argmax is the only
/// remaining pass over the row — on narrow bands a single masked
/// compare.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
#[inline]
unsafe fn row_argmax_avx512(row: &[i16], mx: i16) -> usize {
    use std::arch::x86_64::*;
    let width = row.len();
    // SAFETY: loads are masked by `(1 << min(rem, 32)) − 1`, so lane
    // `j` reads `row[w + j]` only when `w + j < width`; AVX-512BW is
    // caller-detected.
    unsafe {
        let vmx = _mm512_set1_epi16(mx);
        let mut w = 0usize;
        while w < width {
            let rem = width - w;
            let k: __mmask32 = if rem >= 32 { !0u32 } else { (1u32 << rem) - 1 };
            let vals = _mm512_maskz_loadu_epi16(k, row.as_ptr().add(w).cast());
            let eq = _mm512_mask_cmpeq_epi16_mask(k, vals, vmx);
            if eq != 0 {
                return w + eq.trailing_zeros() as usize;
            }
            w += 32;
        }
    }
    unreachable!("live max present")
}

/// [`row_argmax_generic`] over 256-bit `vpcmpeqw` + `vpmovmskb` (two
/// mask bits per `i16` lane; the position is `tzcnt/2`). The
/// sub-16-cell tail falls back to the scalar body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn row_argmax_avx2(row: &[i16], mx: i16) -> usize {
    use std::arch::x86_64::*;
    let width = row.len();
    let vect = width & !15;
    // SAFETY: each 32 B load ends at `row[w + 16]` with
    // `w + 16 ≤ vect ≤ width`; AVX2 is caller-detected.
    unsafe {
        let vmx = _mm256_set1_epi16(mx);
        let mut w = 0usize;
        while w < vect {
            let vals = _mm256_loadu_si256(row.as_ptr().add(w).cast());
            let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi16(vals, vmx)) as u32;
            if eq != 0 {
                return w + eq.trailing_zeros() as usize / 2;
            }
            w += 16;
        }
    }
    vect + row_argmax_generic(&row[vect..], mx)
}

/// The first-maximum argmax scan at the selected backend. Soundness
/// of the intrinsic paths follows from the same `clamp_to_host`
/// guarantee as [`sweep_row`]'s.
#[inline(always)]
fn row_argmax(backend: SweepBackend, row: &[i16], mx: i16) -> usize {
    #[cfg(target_arch = "x86_64")]
    match backend {
        // SAFETY: `clamp_to_host` admitted the backend.
        SweepBackend::Avx512 => unsafe { row_argmax_avx512(row, mx) },
        // SAFETY: as above.
        SweepBackend::Avx2 => unsafe { row_argmax_avx2(row, mx) },
        SweepBackend::Sse2 | SweepBackend::Generic => row_argmax_generic(row, mx),
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend;
        row_argmax_generic(row, mx)
    }
}

/// Advances one lane by up to [`BURST_ROUNDS`] antidiagonal rounds —
/// prologue, fused sweep, and reductions per round, exactly the
/// scalar reference's control flow — and returns the number of rounds
/// executed. Stops early when the lane leaves [`LaneState::Active`]
/// or when [`BandPolicy::Grow`] needs a wider arena pitch than
/// `stride`: `need_stride` is raised and the paused round commits
/// **nothing** (prologue mutations happen only once the round is sure
/// to execute), so re-running the prologue after the re-pitch is
/// exact.
///
/// This is the dispatcher: the burst body itself lives in
/// [`lane_burst_impl`] and is compiled once **per backend** behind a
/// matching `#[target_feature]` wrapper. Multiversioning the whole
/// burst (rather than just the row sweep) is what lets LLVM inline
/// the intrinsic sweeps into the round loop and hoist their broadcast
/// constants across rounds — at the ~40-cell row widths the X-Drop
/// band typically settles into, those per-row fixed costs are a
/// double-digit fraction of the kernel.
#[allow(clippy::too_many_arguments)]
fn lane_burst(
    lane: &mut Lane,
    planes: &mut [Vec<i16>; 3],
    rb: usize,
    stride: usize,
    mm: &MatchMismatch,
    params: XDropParams,
    policy: BandPolicy,
    backend: SweepBackend,
    need_stride: &mut usize,
    report: &mut BatchReport,
) -> u64 {
    #[cfg(target_arch = "x86_64")]
    match backend {
        // SAFETY: `clamp_to_host` admitted the backend, so the
        // required target features were runtime-detected.
        SweepBackend::Avx512 => unsafe {
            lane_burst_avx512(
                lane,
                planes,
                rb,
                stride,
                mm,
                params,
                policy,
                need_stride,
                report,
            )
        },
        // SAFETY: as above — AVX2 was runtime-detected.
        SweepBackend::Avx2 => unsafe {
            lane_burst_avx2(
                lane,
                planes,
                rb,
                stride,
                mm,
                params,
                policy,
                need_stride,
                report,
            )
        },
        SweepBackend::Sse2 => lane_burst_impl(
            lane,
            planes,
            rb,
            stride,
            mm,
            params,
            policy,
            SweepBackend::Sse2,
            need_stride,
            report,
        ),
        SweepBackend::Generic => lane_burst_impl(
            lane,
            planes,
            rb,
            stride,
            mm,
            params,
            policy,
            SweepBackend::Generic,
            need_stride,
            report,
        ),
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend;
        lane_burst_impl(
            lane,
            planes,
            rb,
            stride,
            mm,
            params,
            policy,
            SweepBackend::Generic,
            need_stride,
            report,
        )
    }
}

/// [`lane_burst_impl`] compiled with AVX-512BW enabled, so the
/// masked sweep and argmax inline into the burst loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
#[allow(clippy::too_many_arguments)]
unsafe fn lane_burst_avx512(
    lane: &mut Lane,
    planes: &mut [Vec<i16>; 3],
    rb: usize,
    stride: usize,
    mm: &MatchMismatch,
    params: XDropParams,
    policy: BandPolicy,
    need_stride: &mut usize,
    report: &mut BatchReport,
) -> u64 {
    lane_burst_impl(
        lane,
        planes,
        rb,
        stride,
        mm,
        params,
        policy,
        SweepBackend::Avx512,
        need_stride,
        report,
    )
}

/// [`lane_burst_impl`] compiled with AVX2 enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn lane_burst_avx2(
    lane: &mut Lane,
    planes: &mut [Vec<i16>; 3],
    rb: usize,
    stride: usize,
    mm: &MatchMismatch,
    params: XDropParams,
    policy: BandPolicy,
    need_stride: &mut usize,
    report: &mut BatchReport,
) -> u64 {
    lane_burst_impl(
        lane,
        planes,
        rb,
        stride,
        mm,
        params,
        policy,
        SweepBackend::Avx2,
        need_stride,
        report,
    )
}

/// The burst body shared by every backend; see [`lane_burst`].
/// `#[inline(always)]` + a literal `backend` at each call site fold
/// the [`sweep_row`]/[`row_argmax`] dispatch matches at compile time
/// inside each `#[target_feature]` wrapper.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn lane_burst_impl(
    lane: &mut Lane,
    planes: &mut [Vec<i16>; 3],
    rb: usize,
    stride: usize,
    mm: &MatchMismatch,
    params: XDropParams,
    policy: BandPolicy,
    backend: SweepBackend,
    need_stride: &mut usize,
    report: &mut BatchReport,
) -> u64 {
    let x = params.x;
    let gap16 = mm.gap_penalty as i16;
    let (mat16, mis16) = (mm.match_score as i16, mm.mismatch_score as i16);
    let mut exec = 0u64;
    let mut timer = PhaseTimer::start();
    for _ in 0..BURST_ROUNDS {
        // ---- Prologue: candidate interval and band policy on
        // locals; nothing commits before the arena-pitch check.
        let d = lane.d + 1;
        if d > lane.m + lane.n {
            lane.state = LaneState::Done;
            break;
        }
        if let Some(cap) = params.max_antidiagonals {
            if lane.stats.antidiagonals as usize >= cap {
                lane.state = LaneState::Done;
                break;
            }
        }
        let geo_lo = d.saturating_sub(lane.m);
        let geo_hi = d.min(lane.n);
        let mut cand_lo = lane.live_lo.max(geo_lo);
        let mut cand_hi = (lane.live_hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            lane.state = LaneState::Done;
            break;
        }
        let mut width = cand_hi - cand_lo + 1;
        let band_cap = match policy {
            BandPolicy::Exact(b) | BandPolicy::Saturate(b) => b,
            BandPolicy::Grow(_) => lane.cap,
        };
        if width > band_cap {
            match policy {
                BandPolicy::Exact(delta_b) => {
                    lane.state = LaneState::Failed(AlignError::BandExceeded {
                        needed: width,
                        delta_b,
                        antidiagonal: d,
                    });
                    break;
                }
                BandPolicy::Grow(_) => {
                    let new_cap = width.max(2 * lane.cap);
                    if new_cap + 2 > stride {
                        *need_stride = (*need_stride).max(new_cap + 2);
                        break;
                    }
                    lane.cap = new_cap;
                    lane.stats.work_bytes = 2 * new_cap * CELL_BYTES;
                }
                BandPolicy::Saturate(delta_b) => {
                    let half = delta_b / 2;
                    let lo_min = cand_lo;
                    let lo_max = cand_hi + 1 - delta_b;
                    let lo = lane.prev_best_i.saturating_sub(half).clamp(lo_min, lo_max);
                    lane.stats.cells_clipped += (width - delta_b) as u64;
                    cand_lo = lo;
                    cand_hi = lo + delta_b - 1;
                    width = delta_b;
                }
            }
        }
        lane.d = d;
        exec += 1;
        report.prologue_ns += timer.lap();

        // ---- Fused sweep: one branch-free saturating pass whose
        // operands are index-shifted views of the rows written in
        // rounds d−1 (plane (d+2)%3) and d−2 (plane (d+1)%3), written
        // straight into plane d%3 — no operand staging, no writeback.
        // The substitution compare reads the sentinel-padded sequence
        // copies directly, and the row max / live-min reductions ride
        // in the same pass.
        let cur = d % 3;
        let [a, b, c] = planes;
        // (write plane, d−1 plane, d−2 plane) for this lane's ring
        // position.
        let (outp, r1, r2): (&mut Vec<i16>, &Vec<i16>, &Vec<i16>) = match cur {
            0 => (a, &*c, &*b),
            1 => (b, &*a, &*c),
            _ => (c, &*b, &*a),
        };
        // Candidate-interval monotonicity (module docs) makes both
        // offsets non-negative and bounds every read by the source
        // row's trailing pad.
        let off1 = cand_lo - lane.bases[(cur + 2) % 3];
        let off2 = cand_lo - lane.bases[(cur + 1) % 3];
        // The lane's X-Drop threshold, clamped into the `i16` domain.
        // Clamping is exact where it matters: below `DROP16` no live
        // value (`> DROP16`) can sit under the threshold either way,
        // and a threshold above `i16::MAX` (only reachable with a
        // negative `x`) can misclassify only a cell equal to
        // `i16::MAX` — which then sits on [`HIGH_GUARD`] and escapes
        // to the exact scalar rerun.
        let thr16 = (lane.t_best - x).clamp(i32::from(DROP16), i32::from(i16::MAX)) as i16;
        // `r1s[w]` = H[d−1][i−1] (up), `r1s[w+1]` = H[d−1][i] (left),
        // `r2s[w]` = H[d−2][i−1] (diagonal), `vs[w]` = V[i−1],
        // `hs[w]` = H[d−i−1], for i = cand_lo + w (the sequence reads
        // hit a [`SEQ_PAD`] exactly where the diagonal parent is a
        // pad, so their value never matters there).
        let r1s = &r1[rb + off1..rb + off1 + width + 1];
        let r2s = &r2[rb + off2..rb + off2 + width];
        let vs = &lane.vpad[cand_lo..cand_lo + width];
        let hs = &lane.hpad[lane.m + cand_lo - d..lane.m + cand_lo - d + width];
        let orow = &mut outp[rb..rb + width + 2];
        let sw = sweep_row(
            backend, r1s, r2s, vs, hs, orow, width, mat16, mis16, gap16, thr16,
        );
        orow[0] = NEG_INF16; // leading pad
        orow[width + 1] = NEG_INF16; // trailing pad
        lane.bases[cur] = cand_lo;
        lane.widths[cur] = width;
        report.lane_cells += width as u64;
        report.sweep_ns += timer.lap();

        // ---- Reduce: stats bookkeeping on the sweep's fused
        // reductions plus one short argmax scan over the just-written
        // row. These reproduce the scalar reference's in-order
        // reductions exactly: the first slot holding the diagonal
        // maximum is its first-max-wins argmax, and the first/last
        // kept slots bound the next live interval. The argmax may
        // start at `lo_w` because every earlier slot stores
        // [`NEG_INF16`] `< mx`.
        lane.stats.cells_computed += width as u64;
        lane.stats.cells_dropped += sw.dropped;
        lane.stats.antidiagonals += 1;
        if i32::from(sw.mx) >= HIGH_GUARD || sw.low_hit {
            lane.state = LaneState::Overflowed;
            break;
        }
        if sw.mx <= DROP16 {
            lane.state = LaneState::Done;
            break;
        }
        let (lo_w, hi_w) = if sw.lo_w == usize::MAX {
            live_bounds(&orow[1..=width])
        } else {
            (sw.lo_w, sw.hi_w)
        };
        let best_w = lo_w + row_argmax(backend, &orow[1 + lo_w..=width], sw.mx);
        let smax = i32::from(sw.mx);
        lane.live_lo = cand_lo + lo_w;
        lane.live_hi = cand_lo + hi_w;
        lane.prev_best_i = cand_lo + best_w;
        if smax > lane.best.best_score {
            lane.best = AlignResult {
                best_score: smax,
                end_h: d - (cand_lo + best_w),
                end_v: cand_lo + best_w,
            };
        }
        lane.stats.delta_w = lane.stats.delta_w.max(hi_w - lo_w + 1);
        lane.t_best = lane.t_best.max(smax);
        report.reduce_ns += timer.lap();
    }
    exec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    /// Phase-profile harness: `cargo test -p xdrop-core --release \
    /// --features batch-profile phase_profile -- --ignored --nocapture`
    /// prints the per-phase nanosecond split over a bench-shaped pool.
    #[test]
    #[ignore = "profiling harness, run manually with --features batch-profile"]
    fn phase_profile() {
        let mut state = 0x243f_6a88_85a3_08d3_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pool: Vec<(Vec<u8>, Vec<u8>)> = (0..64)
            .map(|_| {
                let len = 1900 + (rng() % 200) as usize;
                let h: Vec<u8> = (0..len).map(|_| (rng() % 4) as u8).collect();
                let v: Vec<u8> = h
                    .iter()
                    .map(|&b| if rng() % 20 == 0 { (b + 1) % 4 } else { b })
                    .collect();
                (h, v)
            })
            .collect();
        let tasks: Vec<BatchTask<'_>> = pool
            .iter()
            .map(|(h, v)| BatchTask {
                h: TaskView::Fwd(h),
                v: TaskView::Fwd(v),
            })
            .collect();
        let params = XDropParams::new(50);
        let policy = BandPolicy::Grow(64);
        let mut best = BatchReport::default();
        let mut best_ns = u64::MAX;
        for _ in 0..20 {
            let t0 = std::time::Instant::now();
            let (o, report) = align_batch_with_lanes(&tasks, &sc(), params, policy, 8);
            let total = t0.elapsed().as_nanos() as u64;
            std::hint::black_box(&o);
            if total < best_ns {
                best_ns = total;
                best = report;
            }
        }
        let phases = best.prologue_ns + best.stage_ns + best.sweep_ns + best.reduce_ns;
        println!(
            "total {best_ns} ns | prologue {} stage {} sweep {} reduce {} (sum {phases}) \
             | rounds {} lane_rounds {} lane_cells {} cells/lane-round {:.1}",
            best.prologue_ns,
            best.stage_ns,
            best.sweep_ns,
            best.reduce_ns,
            best.rounds,
            best.lane_rounds,
            best.lane_cells,
            best.lane_cells as f64 / best.lane_rounds.max(1) as f64,
        );
    }

    fn assert_batch_matches_scalar(
        tasks: &[BatchTask<'_>],
        scorer: &MatchMismatch,
        params: XDropParams,
        policy: BandPolicy,
        lanes: usize,
    ) -> BatchReport {
        let (got, report) = align_batch_with_lanes(tasks, scorer, params, policy, lanes);
        assert_eq!(got.len(), tasks.len());
        for (t, g) in tasks.iter().zip(&got) {
            let reference = scalar_task(t, scorer, params, policy);
            assert_eq!(&reference, g, "lane vs scalar, lanes={lanes}");
        }
        // Refill timing must never leak into results: the strict
        // no-refill bucket mode is the same batch, bit for bit.
        let (bucketed, _) = align_batch_with_opts(tasks, scorer, params, policy, lanes, false);
        assert_eq!(got, bucketed, "refill vs no-refill, lanes={lanes}");
        report
    }

    #[test]
    fn mixed_direction_batch_matches_scalar() {
        let a = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGT");
        let b = encode_dna(b"ACGTACGAACGTACTTACGTACGAACGT");
        let c = encode_dna(b"TTGGACGTACAA");
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&b),
            },
            BatchTask {
                h: TaskView::Rev(&a),
                v: TaskView::Rev(&b),
            },
            BatchTask {
                h: TaskView::Fwd(&c),
                v: TaskView::Rev(&a),
            },
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&a),
            },
        ];
        for lanes in [1, 2, 8, 16] {
            for policy in [
                BandPolicy::Grow(4),
                BandPolicy::Exact(3),
                BandPolicy::Saturate(5),
            ] {
                let report =
                    assert_batch_matches_scalar(&tasks, &sc(), XDropParams::new(12), policy, lanes);
                assert_eq!(report.lanes, lanes);
                assert_eq!(report.buckets, tasks.len().div_ceil(lanes));
                assert_eq!(report.fallbacks, 0);
            }
        }
    }

    #[test]
    fn empty_and_tiny_tasks() {
        let a = encode_dna(b"ACGT");
        let empty: [u8; 0] = [];
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&empty),
                v: TaskView::Fwd(&a),
            },
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&empty),
            },
            BatchTask {
                h: TaskView::Fwd(&empty),
                v: TaskView::Fwd(&empty),
            },
            BatchTask {
                h: TaskView::Fwd(&a[..1]),
                v: TaskView::Fwd(&a[..1]),
            },
        ];
        assert_batch_matches_scalar(&tasks, &sc(), XDropParams::new(5), BandPolicy::Exact(2), 4);
    }

    #[test]
    fn zero_delta_b_is_the_scalar_error() {
        let a = encode_dna(b"ACGT");
        let tasks = [BatchTask {
            h: TaskView::Fwd(&a),
            v: TaskView::Fwd(&a),
        }];
        let (got, _) = align_batch(&tasks, &sc(), XDropParams::new(5), BandPolicy::Exact(0));
        assert_eq!(
            got[0],
            Err(AlignError::InvalidConfig("δ_b must be nonzero"))
        );
    }

    #[test]
    fn ineligible_scorer_falls_back_per_task() {
        // Positive gap penalty: the i16 dropped-sentinel argument
        // breaks, so the whole batch must take the scalar fallback —
        // and still match the reference bit for bit.
        let a = encode_dna(b"ACGTACGTACGTACGT");
        let b = encode_dna(b"ACGAACGTACTTACGT");
        let weird = MatchMismatch::new(2, -3, 1);
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&b),
            },
            BatchTask {
                h: TaskView::Rev(&a),
                v: TaskView::Rev(&b),
            },
        ];
        let report = assert_batch_matches_scalar(
            &tasks,
            &weird,
            XDropParams::new(9),
            BandPolicy::Grow(4),
            8,
        );
        assert_eq!(report.fallbacks, tasks.len());
        assert_eq!(report.buckets, 0);
        assert_eq!(report.materializations, 0, "fallbacks never materialize");
        // Oversized score steps likewise.
        let big = MatchMismatch::new(MAX_STEP + 1, -1, -1);
        let (_, report) = align_batch(&tasks, &big, XDropParams::new(9), BandPolicy::Grow(4));
        assert_eq!(report.fallbacks, tasks.len());
    }

    /// Overflow boundary, high side: identical sequences long enough
    /// for the running best score to land exactly on `i16::MAX`. The
    /// guard band must flag the lane *before* any saturating add can
    /// go inexact, the rerun count must be reported, and the result
    /// must bit-match the `i32` scalar reference (whose best score is
    /// exactly `i16::MAX`).
    #[test]
    fn overflow_at_i16_max_triggers_rerun_and_matches_scalar() {
        let len = i16::MAX as usize; // +1 per matched symbol
        let s: Vec<u8> = (0..len).map(|i| (i % 4) as u8).collect();
        let tasks = [BatchTask {
            h: TaskView::Fwd(&s),
            v: TaskView::Fwd(&s),
        }];
        let (got, report) = align_batch(&tasks, &sc(), XDropParams::new(4), BandPolicy::Grow(4));
        assert_eq!(report.reruns, 1, "guard band must trip the rerun path");
        let out = got[0].as_ref().expect("alignment succeeds");
        assert_eq!(out.result.best_score, i16::MAX as i32);
        let reference = scalar_task(&tasks[0], &sc(), XDropParams::new(4), BandPolicy::Grow(4));
        assert_eq!(reference.as_ref().expect("reference"), out);
    }

    /// Overflow boundary, low side: with pruning effectively disabled
    /// and nothing but mismatches, live scores march down towards
    /// `i16::MIN`. The low guard must flag the lane while values are
    /// still exact, and the rerun must bit-match the reference —
    /// including every stats field of the wide saturate band.
    #[test]
    fn overflow_towards_i16_min_triggers_rerun_and_matches_scalar() {
        // h is all-0s, v all-1s: every cell is a mismatch.
        let h = vec![0u8; 3600];
        let v = vec![1u8; 3600];
        let tasks = [BatchTask {
            h: TaskView::Fwd(&h),
            v: TaskView::Fwd(&v),
        }];
        let params = XDropParams::new(1_000_000);
        let policy = BandPolicy::Saturate(8);
        let (got, report) = align_batch(&tasks, &sc(), params, policy);
        assert_eq!(report.reruns, 1, "low guard must trip the rerun path");
        let reference = scalar_task(&tasks[0], &sc(), params, policy);
        assert_eq!(&reference, &got[0]);
    }

    /// Scores inside the guard band never rerun: the fast path is
    /// exercised, not silently bypassed.
    #[test]
    fn in_range_scores_stay_on_the_fast_path() {
        let s: Vec<u8> = (0..2000).map(|i| (i % 4) as u8).collect();
        let tasks = [BatchTask {
            h: TaskView::Fwd(&s),
            v: TaskView::Fwd(&s),
        }];
        let (got, report) = align_batch(&tasks, &sc(), XDropParams::new(4), BandPolicy::Grow(4));
        assert_eq!(report.reruns, 0);
        assert_eq!(report.fallbacks, 0);
        assert_eq!(got[0].as_ref().unwrap().result.best_score, 2000);
    }

    #[test]
    fn bucketing_is_deterministic_and_by_length() {
        // 5 tasks, lane width 2: longest two share a bucket, etc.
        let s: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let lens = [60usize, 8, 32, 8, 50];
        let tasks: Vec<BatchTask<'_>> = lens
            .iter()
            .map(|&l| BatchTask {
                h: TaskView::Fwd(&s[..l]),
                v: TaskView::Fwd(&s[..l]),
            })
            .collect();
        let report = assert_batch_matches_scalar(
            &tasks,
            &sc(),
            XDropParams::new(10),
            BandPolicy::Grow(4),
            2,
        );
        assert_eq!(report.buckets, 3);
        assert_eq!(report.reruns, 0);
        // Descending length, equal lengths in submission order.
        assert_eq!(task_order(&tasks), vec![0, 4, 2, 1, 3]);
    }

    /// The schedule tiebreak is the original task index: a batch of
    /// all-equal lengths must keep submission order exactly, however
    /// the contents are shuffled.
    #[test]
    fn equal_length_tasks_schedule_in_submission_order() {
        let s: Vec<u8> = (0..48).map(|i| (i % 4) as u8).collect();
        let shuffles: [&[usize]; 3] = [
            &[0, 1, 2, 3, 4, 5],
            &[5, 3, 1, 0, 2, 4],
            &[2, 0, 5, 4, 3, 1],
        ];
        for starts in shuffles {
            let tasks: Vec<BatchTask<'_>> = starts
                .iter()
                .map(|&o| BatchTask {
                    h: TaskView::Fwd(&s[o..o + 24]),
                    v: TaskView::Fwd(&s[o..o + 24]),
                })
                .collect();
            assert_eq!(
                task_order(&tasks),
                (0..tasks.len()).collect::<Vec<_>>(),
                "equal lengths must schedule by submission index"
            );
            assert_batch_matches_scalar(&tasks, &sc(), XDropParams::new(8), BandPolicy::Grow(4), 4);
        }
    }

    /// One materialization per task, even when the lane overflows and
    /// reruns through the scalar reference (the rerun runs on the
    /// original views).
    #[test]
    fn rerun_does_not_rematerialize() {
        let long: Vec<u8> = (0..i16::MAX as usize).map(|i| (i % 4) as u8).collect();
        let short = encode_dna(b"ACGTACGTACGTACGT");
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&long),
                v: TaskView::Fwd(&long),
            },
            BatchTask {
                h: TaskView::Rev(&short),
                v: TaskView::Fwd(&short),
            },
        ];
        let (got, report) =
            align_batch_with_lanes(&tasks, &sc(), XDropParams::new(4), BandPolicy::Grow(4), 2);
        assert_eq!(report.reruns, 1);
        assert_eq!(
            report.materializations,
            tasks.len(),
            "exactly one materialization per task, rerun included"
        );
        for (t, g) in tasks.iter().zip(&got) {
            let reference = scalar_task(t, &sc(), XDropParams::new(4), BandPolicy::Grow(4));
            assert_eq!(&reference, g);
        }
    }

    /// Mid-flight refill keeps the pack occupied: a mixed-length
    /// batch over few lanes must report high occupancy, count its
    /// refills, and stage only the substitution bytes per cell.
    #[test]
    fn refill_keeps_occupancy_high_and_staging_lean() {
        let s: Vec<u8> = (0..4096).map(|i| (i % 4) as u8).collect();
        let lens = [4000usize, 600, 550, 500, 450, 400, 350, 300, 250, 200];
        let tasks: Vec<BatchTask<'_>> = lens
            .iter()
            .map(|&l| BatchTask {
                h: TaskView::Fwd(&s[..l]),
                v: TaskView::Fwd(&s[..l]),
            })
            .collect();
        let (_, report) =
            align_batch_with_lanes(&tasks, &sc(), XDropParams::new(20), BandPolicy::Grow(8), 2);
        assert!(report.rounds > 0);
        assert!(
            report.refills > 0,
            "short lanes must refill while the long lane runs"
        );
        let occ = report.occupancy();
        assert!(
            occ > 0.9 && occ <= 1.0,
            "refill should keep both slots busy, got {occ}"
        );
        assert!(report.lane_cells > 0);
        let spc = report.staged_bytes_per_cell();
        assert!(
            spc < 7.0,
            "persistent staging must beat the 14 B/cell operand-copy kernel, got {spc}"
        );
        // Same batch, no refill: identical results were asserted in
        // other tests; here the occupancy penalty must be visible.
        let (_, strict) = align_batch_with_opts(
            &tasks,
            &sc(),
            XDropParams::new(20),
            BandPolicy::Grow(8),
            2,
            false,
        );
        assert_eq!(strict.refills, 0);
        assert!(strict.occupancy() < occ);
    }

    #[test]
    fn max_antidiagonals_cap_matches_scalar() {
        let a = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let tasks = [BatchTask {
            h: TaskView::Fwd(&a),
            v: TaskView::Fwd(&a),
        }];
        let params = XDropParams::new(20).with_max_antidiagonals(7);
        assert_batch_matches_scalar(&tasks, &sc(), params, BandPolicy::Grow(4), 4);
    }
}
