//! Inter-sequence batched kernel: many alignments per vector.
//!
//! The lane-parallel kernels of [`crate::kernel`] vectorize *within*
//! one antidiagonal and plateau once the live band is narrow — which
//! on real long-read data it almost always is (§6.1). Scrooge
//! (Lindegger et al.) and LOGAN (Zeni et al.) both get their large
//! factors from the *other* axis: packing 8–32 **independent**
//! alignments into each vector register, one alignment per lane, so
//! the register is full even when every band is one cell wide. This
//! module is that inter-sequence kernel ([`KernelKind::Batched`]):
//!
//! * **Length bucketing** — tasks are sorted by descending `|H|+|V|`
//!   and grouped into lane-width buckets, so the lanes of a group
//!   retire after similar numbers of antidiagonal rounds instead of
//!   idling behind one long straggler.
//! * **i16 lanes** — cell values are stored as `i16`, doubling the
//!   lane count per register over the `i32` kernels. Each round
//!   stages every active lane's candidate cells into lane-major
//!   structure-of-arrays buffers (`slot = lane · w_max + w`, so the
//!   left/up operands stage as contiguous slice copies), runs
//!   one flat branch-free saturating-`i16` pass over all of them
//!   (the autovectorizer turns it into `vpaddsw`/`vpmaxsw` chains)
//!   **with the X-Drop cutoff fused in** — each slot carries its
//!   lane's clamped threshold, so classification (live / dropped /
//!   pruned) is part of the same elementwise sweep. What remains per
//!   lane is a handful of contiguous reductions (max, live-min,
//!   dropped count — all branch-free and autovectorizable) plus three
//!   short positional scans, which reproduce the scalar reference's
//!   first-maximum-wins reductions exactly (the first slot holding
//!   the diagonal maximum *is* the first-max-wins argmax).
//! * **Overflow detection and rerun** — `i16` can hold scores the
//!   `i32` reference cannot. A guard band bounds every *live* stored
//!   value away from the representable edges by the maximum per-round
//!   score step; the first round a live value escapes the guard band,
//!   the lane is marked overflowed and transparently re-run through
//!   the scalar `i32` reference. See the soundness argument on
//!   [`HIGH_GUARD`].
//!
//! ## Bit-identity is still the contract
//!
//! Exactly as for the intra-antidiagonal kernels, every task's
//! [`AlignOutput`] (result *and* every [`AlignStats`] field) and
//! every [`BandPolicy::Exact`] error must match what the scalar
//! reference [`xdrop2::align_views_ty`] produces for that task on a
//! fresh workspace. Lanes that cannot be proven exact (overflow) are
//! re-run through that reference, so the contract holds by
//! construction on the rerun path and by the guard-band argument on
//! the fast path. Configurations the `i16` domain cannot model at
//! all (matrix scorers, score steps above [`MAX_STEP`], positive gap
//! penalties) take a per-task scalar fallback, counted in
//! [`BatchReport::fallbacks`].

use crate::error::{AlignError, Result};
use crate::scoring::{MatchMismatch, Scorer};
use crate::seqview::{Fwd, Rev};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::xdrop2::{self, BandPolicy, DiagMeta, Workspace};
use crate::XDropParams;

/// `-∞` sentinel of the `i16` lane domain — `i16::MIN / 4`, mirroring
/// [`crate::NEG_INF`]'s headroom argument: adding a gap penalty (or
/// several) to a dropped cell stays far from the representable edge.
pub const NEG_INF16: i16 = i16::MIN / 4;

/// Dropped-cell threshold of the `i16` domain (`NEG_INF16 / 2`),
/// mirroring [`crate::is_dropped`].
const DROP16: i16 = NEG_INF16 / 2;

/// Largest per-round score step the `i16` lane path accepts:
/// `|match|`, `|mismatch|` and `|gap|` must all be at most this for a
/// batch to run in `i16` lanes (otherwise the whole batch takes the
/// scalar fallback). One antidiagonal round changes a cell by exactly
/// one `sim` or one `gap` application, so this bounds how far a value
/// can move per round — the quantity the guard band is built from.
pub const MAX_STEP: i32 = 1024;

/// Upper guard of the live-value band: `i16::MAX − MAX_STEP`.
///
/// Soundness of the fast path: by induction, while every *live*
/// stored value lies strictly inside `(LOW_GUARD, HIGH_GUARD)`, the
/// next round's candidates derived from live parents lie strictly
/// inside `(DROP16, i16::MAX)` — so the saturating adds cannot
/// actually saturate (the value is exact, equal to the `i32`
/// reference's) and cannot be misclassified as dropped (dropped is
/// `≤ DROP16`). Dropped cells are stored as the canonical
/// [`NEG_INF16`]; with `gap ≤ 0` their derived sums stay `≤ DROP16`
/// and lose every `max` against a live value, exactly like the `i32`
/// sentinel. The first round a live value lands outside the guard
/// band it is still computed exactly — the lane is flagged overflowed
/// *that* round and re-run in `i32`, before any inexact round can
/// happen.
const HIGH_GUARD: i32 = i16::MAX as i32 - MAX_STEP;

/// Lower guard of the live-value band: `DROP16 + MAX_STEP`.
const LOW_GUARD: i32 = DROP16 as i32 + MAX_STEP;

/// A directional byte-slice view of one task sequence — the owned
/// (lifetime-bound, object-safe-free) analogue of
/// [`crate::seqview::SeqView`] the batch API takes, so a batch can
/// mix left extensions (reverse access) and right extensions
/// (forward access) in the same lane group.
#[derive(Debug, Clone, Copy)]
pub enum TaskView<'a> {
    /// Forward access: logical index `i` is physical index `i`.
    Fwd(&'a [u8]),
    /// Reverse access: logical index `i` is physical `len − 1 − i`.
    Rev(&'a [u8]),
}

impl TaskView<'_> {
    /// Number of symbols in the view.
    #[inline(always)]
    pub fn len(&self) -> usize {
        match self {
            TaskView::Fwd(s) | TaskView::Rev(s) => s.len(),
        }
    }

    /// Whether the view is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The symbol at logical position `idx` (`idx < len()`).
    #[inline(always)]
    pub fn at(&self, idx: usize) -> u8 {
        match self {
            TaskView::Fwd(s) => s[idx],
            TaskView::Rev(s) => s[s.len() - 1 - idx],
        }
    }

    /// Forward-order copy: physical index `i` holds logical symbol
    /// `i`, so the staging hot loop indexes a plain slice instead of
    /// branching on the direction per cell.
    fn materialize(&self) -> Vec<u8> {
        match self {
            TaskView::Fwd(s) => s.to_vec(),
            TaskView::Rev(s) => s.iter().rev().copied().collect(),
        }
    }

    /// Reverse-order copy: physical index `t` holds logical symbol
    /// `len − 1 − t`. On antidiagonal `d` the substitution compare
    /// reads logical `H` symbol `d − i − 1` for cell `i`; against
    /// this copy that is physical index `len − d + i` — *forward* in
    /// `i` — so the compare runs over two forward slices and
    /// autovectorizes.
    fn materialize_rev(&self) -> Vec<u8> {
        match self {
            TaskView::Fwd(s) => s.iter().rev().copied().collect(),
            TaskView::Rev(s) => s.to_vec(),
        }
    }
}

/// One alignment task of a batch: an `H` view × `V` view extension.
#[derive(Debug, Clone, Copy)]
pub struct BatchTask<'a> {
    /// Horizontal sequence view.
    pub h: TaskView<'a>,
    /// Vertical sequence view.
    pub v: TaskView<'a>,
}

/// What the batched kernel did with a batch — lane configuration,
/// bucketing, and how many lanes left the `i16` fast path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BatchReport {
    /// Lane count used (vector width in `i16` cells).
    pub lanes: usize,
    /// Number of lane groups (length buckets) executed.
    pub buckets: usize,
    /// Lanes that overflowed the `i16` guard band and were re-run
    /// through the scalar `i32` reference.
    pub reruns: usize,
    /// Tasks that never entered the `i16` path (ineligible scorer or
    /// score magnitudes) and ran the scalar reference directly.
    pub fallbacks: usize,
}

/// Runtime lane-width detection: how many `i16` cells one vector
/// register holds on this host — 32 under AVX-512BW, 16 under AVX2,
/// 8 under SSE4.1/NEON, and a generic 8 elsewhere (the flat staged
/// pass still autovectorizes to whatever the target offers).
#[cfg(target_arch = "x86_64")]
pub fn lane_width() -> usize {
    if std::arch::is_x86_feature_detected!("avx512bw") {
        32
    } else if std::arch::is_x86_feature_detected!("avx2") {
        16
    } else {
        8
    }
}

/// Runtime lane-width detection (aarch64): NEON holds 8 × `i16`.
#[cfg(target_arch = "aarch64")]
pub fn lane_width() -> usize {
    8
}

/// Runtime lane-width detection (other targets): generic 8.
#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn lane_width() -> usize {
    8
}

/// Whether `scorer` can run in `i16` lanes: a plain match/mismatch
/// scheme whose scores fit the guard-band arithmetic. `gap ≤ 0` is
/// required because a positive gap could walk a canonical dropped
/// value back into the live range in `i16` where the `i32` sentinel
/// would have stayed dropped.
fn eligible<S: Scorer>(scorer: &S) -> Option<MatchMismatch> {
    let mm = scorer.as_match_mismatch()?;
    let ok = mm.match_score.abs() <= MAX_STEP
        && mm.mismatch_score.abs() <= MAX_STEP
        && mm.gap_penalty.abs() <= MAX_STEP
        && mm.gap_penalty <= 0;
    ok.then_some(mm)
}

/// Runs one task through the scalar `i32` reference on a fresh
/// workspace — the oracle the batch results are pinned to, and the
/// rerun/fallback path.
fn scalar_task<S: Scorer>(
    task: &BatchTask<'_>,
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> Result<AlignOutput> {
    let mut ws = Workspace::<i32>::new();
    match (task.h, task.v) {
        (TaskView::Fwd(h), TaskView::Fwd(v)) => {
            xdrop2::align_views_ty(&Fwd(h), &Fwd(v), scorer, params, policy, &mut ws)
        }
        (TaskView::Fwd(h), TaskView::Rev(v)) => {
            xdrop2::align_views_ty(&Fwd(h), &Rev(v), scorer, params, policy, &mut ws)
        }
        (TaskView::Rev(h), TaskView::Fwd(v)) => {
            xdrop2::align_views_ty(&Rev(h), &Fwd(v), scorer, params, policy, &mut ws)
        }
        (TaskView::Rev(h), TaskView::Rev(v)) => {
            xdrop2::align_views_ty(&Rev(h), &Rev(v), scorer, params, policy, &mut ws)
        }
    }
}

/// Aligns a batch of tasks with the hardware-detected lane width.
///
/// Returns one [`Result`] per task, in task order, plus a
/// [`BatchReport`]. Every outcome is bit-identical to running that
/// task alone through the scalar reference on a fresh workspace.
pub fn align_batch<S: Scorer>(
    tasks: &[BatchTask<'_>],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> (Vec<Result<AlignOutput>>, BatchReport) {
    align_batch_with_lanes(tasks, scorer, params, policy, lane_width())
}

/// [`align_batch`] with an explicit lane count (bench lane sweeps and
/// tests; results never depend on the lane count, only wall-clock
/// does).
pub fn align_batch_with_lanes<S: Scorer>(
    tasks: &[BatchTask<'_>],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    lanes: usize,
) -> (Vec<Result<AlignOutput>>, BatchReport) {
    let lanes = lanes.max(1);
    let mut report = BatchReport {
        lanes,
        ..Default::default()
    };
    let mut out: Vec<Option<Result<AlignOutput>>> = (0..tasks.len()).map(|_| None).collect();
    match eligible(scorer) {
        Some(mm) => {
            // Length bucketing: descending |H|+|V| (index as tiebreak,
            // so grouping is deterministic), chunked into lane groups.
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_unstable_by_key(|&t| {
                (std::cmp::Reverse(tasks[t].h.len() + tasks[t].v.len()), t)
            });
            for group in order.chunks(lanes) {
                report.buckets += 1;
                run_group(tasks, group, &mm, params, policy, &mut out, &mut report);
            }
        }
        None => {
            for (task, slot) in tasks.iter().zip(out.iter_mut()) {
                *slot = Some(scalar_task(task, scorer, params, policy));
                report.fallbacks += 1;
            }
        }
    }
    // Overflowed lanes: transparent rerun through the i32 reference.
    (
        out.into_iter()
            .map(|slot| slot.expect("every task resolved"))
            .collect(),
        report,
    )
}

/// Per-lane DP state — one task's complete scalar-reference state
/// machine, advanced one antidiagonal per round in lockstep with the
/// other lanes of its group.
struct Lane {
    task: usize,
    /// Reverse-order copy of the `H` view (see
    /// [`TaskView::materialize_rev`] for why reversed).
    hrev: Vec<u8>,
    /// Forward-order copy of the `V` view.
    vseq: Vec<u8>,
    m: usize,
    n: usize,
    /// The two antidiagonal band buffers (`i16` cells).
    bufs: [Vec<i16>; 2],
    metas: [DiagMeta; 2],
    /// Virtual workspace capacity with fresh-workspace semantics:
    /// starts at `δ_b`, doubles under [`BandPolicy::Grow`] exactly as
    /// `align_views_ty` grows a fresh [`Workspace`].
    cap: usize,
    best: AlignResult,
    t_best: i32,
    live_lo: usize,
    live_hi: usize,
    prev_best_i: usize,
    stats: AlignStats,
    /// Candidate interval of the round being staged (set in the
    /// prologue, consumed by stage/reduce).
    cand_lo: usize,
    cand_hi: usize,
    state: LaneState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LaneState {
    /// Still sweeping antidiagonals.
    Active,
    /// Skipped this round's stage/reduce (degenerate interval) but
    /// terminated normally.
    Done,
    /// A live value escaped the `i16` guard band: discard and re-run
    /// through the `i32` reference.
    Overflowed,
    /// Terminated with the scalar reference's error.
    Failed(AlignError),
}

impl Lane {
    #[inline(always)]
    fn round_active(&self) -> bool {
        self.state == LaneState::Active
    }
}

/// The `i32` cell size the modeled `work_bytes` are stated in: the
/// device kernel's footprint is defined by the reference cell type,
/// not by this host kernel's internal `i16` storage — bit-identity
/// of [`AlignStats::work_bytes`] demands the reference's accounting.
const CELL_BYTES: usize = std::mem::size_of::<i32>();

/// Runs one lane group to completion: the scalar reference's control
/// flow replicated per lane, with the per-cell recurrence hoisted
/// into one flat branch-free saturating-`i16` pass per round.
#[allow(clippy::needless_range_loop)]
fn run_group(
    tasks: &[BatchTask<'_>],
    group: &[usize],
    mm: &MatchMismatch,
    params: XDropParams,
    policy: BandPolicy,
    out: &mut [Option<Result<AlignOutput>>],
    report: &mut BatchReport,
) {
    let delta_b = policy.delta_b();
    if delta_b == 0 {
        for &t in group {
            out[t] = Some(Err(AlignError::InvalidConfig("δ_b must be nonzero")));
        }
        return;
    }
    let x = params.x;
    let gap16 = mm.gap_penalty as i16;
    let (mat16, mis16) = (mm.match_score as i16, mm.mismatch_score as i16);
    let k = group.len();

    let mut ls: Vec<Lane> = group
        .iter()
        .map(|&t| {
            let (h, v) = (tasks[t].h, tasks[t].v);
            let (m, n) = (h.len(), v.len());
            let mut bufs = [vec![NEG_INF16; delta_b], vec![NEG_INF16; delta_b]];
            bufs[0][0] = 0;
            Lane {
                task: t,
                hrev: h.materialize_rev(),
                vseq: v.materialize(),
                m,
                n,
                bufs,
                metas: [
                    DiagMeta {
                        cand_lo: 0,
                        cand_hi: 0,
                    },
                    DiagMeta::EMPTY,
                ],
                cap: delta_b,
                best: AlignResult::empty(),
                t_best: 0,
                live_lo: 0,
                live_hi: 0,
                prev_best_i: 0,
                stats: AlignStats {
                    cells_computed: 1,
                    delta_w: 1,
                    delta: m.min(n) + 1,
                    work_bytes: 2 * delta_b * CELL_BYTES,
                    ..Default::default()
                },
                cand_lo: 1,
                cand_hi: 0,
                state: LaneState::Active,
            }
        })
        .collect();

    // Lane-major SoA staging buffers: slot lane·max_w + w, so each
    // lane's staged cells are one contiguous run (`sl`/`su` stage as
    // plain slice copies; the flat sweep is elementwise and does not
    // care about layout). `sd` is the staged d−2 diagonal (canonical
    // −∞ when dropped/absent), `sim` its substitution score (0 when
    // `sd` is −∞, so the flat add keeps the sentinel), `sl`/`su` the
    // d−1 left/up inputs. `sth` carries each slot's clamped X-Drop
    // threshold (padding `i16::MAX`, so padding always classifies
    // dropped), `st` receives the classified stored value (the score
    // when live, [`NEG_INF16`] otherwise) and `dr` the pruned-by-
    // cutoff flag the per-lane `cells_dropped` count sums.
    let mut sd: Vec<i16> = Vec::new();
    let mut sim: Vec<i16> = Vec::new();
    let mut sl: Vec<i16> = Vec::new();
    let mut su: Vec<i16> = Vec::new();
    let mut sth: Vec<i16> = Vec::new();
    let mut st: Vec<i16> = Vec::new();
    let mut dr: Vec<i16> = Vec::new();

    for d in 1usize.. {
        // Prologue: per-lane candidate interval and band policy.
        let mut max_w = 0usize;
        for lane in ls.iter_mut() {
            if !lane.round_active() {
                continue;
            }
            lane.cand_lo = 1;
            lane.cand_hi = 0; // degenerate unless set below
            if d > lane.m + lane.n {
                lane.state = LaneState::Done;
                continue;
            }
            if let Some(cap) = params.max_antidiagonals {
                if lane.stats.antidiagonals as usize >= cap {
                    lane.state = LaneState::Done;
                    continue;
                }
            }
            let geo_lo = d.saturating_sub(lane.m);
            let geo_hi = d.min(lane.n);
            let mut cand_lo = lane.live_lo.max(geo_lo);
            let mut cand_hi = (lane.live_hi + 1).min(geo_hi);
            if cand_lo > cand_hi {
                lane.state = LaneState::Done;
                continue;
            }
            let width = cand_hi - cand_lo + 1;
            let band_cap = match policy {
                BandPolicy::Exact(b) | BandPolicy::Saturate(b) => b,
                BandPolicy::Grow(_) => lane.cap,
            };
            if width > band_cap {
                match policy {
                    BandPolicy::Exact(delta_b) => {
                        lane.state = LaneState::Failed(AlignError::BandExceeded {
                            needed: width,
                            delta_b,
                            antidiagonal: d,
                        });
                        continue;
                    }
                    BandPolicy::Grow(_) => {
                        let new_cap = width.max(2 * lane.cap);
                        lane.cap = new_cap;
                        for b in &mut lane.bufs {
                            b.resize(new_cap, NEG_INF16);
                        }
                        lane.stats.work_bytes = 2 * new_cap * CELL_BYTES;
                    }
                    BandPolicy::Saturate(delta_b) => {
                        let half = delta_b / 2;
                        let lo_min = cand_lo;
                        let lo_max = cand_hi + 1 - delta_b;
                        let lo = lane.prev_best_i.saturating_sub(half).clamp(lo_min, lo_max);
                        lane.stats.cells_clipped += (width - delta_b) as u64;
                        cand_lo = lo;
                        cand_hi = lo + delta_b - 1;
                    }
                }
            }
            lane.cand_lo = cand_lo;
            lane.cand_hi = cand_hi;
            max_w = max_w.max(cand_hi - cand_lo + 1);
        }
        if ls.iter().all(|l| !l.round_active()) {
            break;
        }

        // Stage: reset the SoA buffers to padding, then write every
        // active lane's cell inputs. Padding cells compute a dropped
        // score the reduction never reads.
        let slots = max_w * k;
        sd.clear();
        sd.resize(slots, NEG_INF16);
        sim.clear();
        sim.resize(slots, 0);
        sl.clear();
        sl.resize(slots, NEG_INF16);
        su.clear();
        su.resize(slots, NEG_INF16);
        sth.clear();
        sth.resize(slots, i16::MAX);
        st.clear();
        st.resize(slots, NEG_INF16);
        dr.clear();
        dr.resize(slots, 0);
        let cur_idx = d % 2;
        let prev_idx = 1 - cur_idx;
        for (kidx, lane) in ls.iter().enumerate() {
            if !lane.round_active() {
                continue;
            }
            let p2 = lane.metas[cur_idx];
            let p1 = lane.metas[prev_idx];
            let (clo, chi) = (lane.cand_lo, lane.cand_hi);
            let base = kidx * max_w;
            // The lane's X-Drop threshold, clamped into the `i16`
            // domain. Clamping is exact where it matters: below
            // `DROP16` no live value (`> DROP16`) can sit under the
            // threshold either way, and a threshold above `i16::MAX`
            // (only reachable with a negative `x`) can misclassify
            // only a cell equal to `i16::MAX` — which then sits on
            // [`HIGH_GUARD`] and escapes to the exact scalar rerun.
            let thr16 = (lane.t_best - x).clamp(i32::from(DROP16), i32::from(i16::MAX)) as i16;
            sth[base..base + (chi - clo + 1)].fill(thr16);
            // `sl` needs `i ∈ p1`: one contiguous copy over the
            // intersection of the candidate and stored intervals
            // (empty intersections — e.g. `DiagMeta::EMPTY` — copy
            // nothing, leaving the −∞ padding).
            let buf1 = &lane.bufs[prev_idx];
            let lo = clo.max(p1.cand_lo);
            let hi = chi.min(p1.cand_hi);
            if lo <= hi {
                sl[base + (lo - clo)..=base + (hi - clo)]
                    .copy_from_slice(&buf1[lo - p1.cand_lo..=hi - p1.cand_lo]);
            }
            // `su` needs `i − 1 ∈ p1`, i.e. `i` shifted one right.
            let lo = clo.max(p1.cand_lo + 1);
            let hi = chi.min(p1.cand_hi + 1);
            if lo <= hi {
                su[base + (lo - clo)..=base + (hi - clo)]
                    .copy_from_slice(&buf1[(lo - 1) - p1.cand_lo..=(hi - 1) - p1.cand_lo]);
            }
            // `sd`/`sim` need `i − 1 ∈ p2`: dropped cells are stored
            // as the canonical [`NEG_INF16`], so `sd` stages as a
            // plain shifted slice copy with no per-cell liveness
            // branch — a dead parent's `−∞ ± sim` still lands below
            // [`DROP16`] and loses every `max` against a live
            // operand, exactly like the staged sentinel did. The
            // substitution compare then runs unconditionally over
            // the same interval: forward `V` slice against the
            // reversed `H` copy (both forward in `i`, see
            // [`TaskView::materialize_rev`]), a branch-free
            // compare-select the autovectorizer handles. Bounds are
            // geometric, not liveness-dependent: `i ≤ p2.cand_hi + 1
            // ≤ d − 1` gives `j = d − i ≥ 1`, and `i − 1 ≥
            // p2.cand_lo ≥ d − 2 − m + 1` keeps `j − 1 ≤ m − 1`.
            let buf2 = &lane.bufs[cur_idx];
            let lo = clo.max(p2.cand_lo + 1);
            let hi = chi.min(p2.cand_hi + 1);
            if lo <= hi {
                let off = base + (lo - clo);
                let run = hi - lo + 1;
                sd[off..off + run]
                    .copy_from_slice(&buf2[(lo - 1) - p2.cand_lo..=(hi - 1) - p2.cand_lo]);
                let vs = &lane.vseq[lo - 1..hi];
                let hs = &lane.hrev[lane.m + lo - d..lane.m + hi + 1 - d];
                let sim_run = &mut sim[off..off + run];
                for w in 0..run {
                    sim_run[w] = if vs[w] == hs[w] { mat16 } else { mis16 };
                }
            }
        }

        // Sweep: one flat branch-free pass over every lane's cells,
        // with the X-Drop classification fused in — `st` gets the
        // score when the cell survives (live parent, above its lane's
        // threshold) and the canonical −∞ otherwise; `dr` flags the
        // cells the cutoff pruned. Saturating adds are a safety net
        // only — the guard band proves they never actually saturate
        // on values the reduction keeps.
        for idx in 0..slots {
            let diag = sd[idx].saturating_add(sim[idx]);
            let lft = sl[idx].saturating_add(gap16);
            let up = su[idx].saturating_add(gap16);
            let r = diag.max(lft).max(up);
            let alive = r > DROP16;
            let kept = alive & (r >= sth[idx]);
            st[idx] = if kept { r } else { NEG_INF16 };
            dr[idx] = i16::from(alive & !kept);
        }

        // Reduce: per lane, three contiguous branch-free reductions
        // (diagonal max, live min, pruned count — all vectorizable)
        // plus short positional scans. These reproduce the scalar
        // reference's in-order reductions exactly: the first slot
        // holding the diagonal maximum is its first-max-wins argmax,
        // and the first/last live slots bound the next live interval.
        for (kidx, lane) in ls.iter_mut().enumerate() {
            if !lane.round_active() {
                continue;
            }
            let (cand_lo, cand_hi) = (lane.cand_lo, lane.cand_hi);
            let width = cand_hi - cand_lo + 1;
            let base = kidx * max_w;
            let stl = &st[base..base + width];
            let drl = &dr[base..base + width];
            let mut mx = NEG_INF16;
            let mut mn = i16::MAX;
            let mut dropped = 0u64;
            for w in 0..width {
                let v = stl[w];
                mx = mx.max(v);
                mn = mn.min(if v > DROP16 { v } else { i16::MAX });
                dropped += drl[w] as u64;
            }
            lane.bufs[cur_idx][..width].copy_from_slice(stl);
            lane.stats.cells_computed += width as u64;
            lane.stats.cells_dropped += dropped;
            lane.stats.antidiagonals += 1;
            lane.metas[cur_idx] = DiagMeta { cand_lo, cand_hi };
            if i32::from(mx) >= HIGH_GUARD || i32::from(mn) <= LOW_GUARD {
                lane.state = LaneState::Overflowed;
                continue;
            }
            if mx <= DROP16 {
                lane.state = LaneState::Done;
                continue;
            }
            let mut lo_w = 0usize;
            while stl[lo_w] <= DROP16 {
                lo_w += 1;
            }
            let mut hi_w = width - 1;
            while stl[hi_w] <= DROP16 {
                hi_w -= 1;
            }
            let best_w = stl.iter().position(|&v| v == mx).expect("live max present");
            let smax = i32::from(mx);
            lane.live_lo = cand_lo + lo_w;
            lane.live_hi = cand_lo + hi_w;
            lane.prev_best_i = cand_lo + best_w;
            if smax > lane.best.best_score {
                lane.best = AlignResult {
                    best_score: smax,
                    end_h: d - (cand_lo + best_w),
                    end_v: cand_lo + best_w,
                };
            }
            lane.stats.delta_w = lane.stats.delta_w.max(hi_w - lo_w + 1);
            lane.t_best = lane.t_best.max(smax);
        }
    }

    for lane in ls {
        out[lane.task] = Some(match lane.state {
            LaneState::Done | LaneState::Active => Ok(AlignOutput {
                result: lane.best,
                stats: lane.stats,
            }),
            LaneState::Overflowed => {
                report.reruns += 1;
                scalar_task(&tasks[lane.task], mm, params, policy)
            }
            LaneState::Failed(e) => Err(e),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    fn assert_batch_matches_scalar(
        tasks: &[BatchTask<'_>],
        scorer: &MatchMismatch,
        params: XDropParams,
        policy: BandPolicy,
        lanes: usize,
    ) -> BatchReport {
        let (got, report) = align_batch_with_lanes(tasks, scorer, params, policy, lanes);
        assert_eq!(got.len(), tasks.len());
        for (t, g) in tasks.iter().zip(&got) {
            let reference = scalar_task(t, scorer, params, policy);
            assert_eq!(&reference, g, "lane vs scalar, lanes={lanes}");
        }
        report
    }

    #[test]
    fn mixed_direction_batch_matches_scalar() {
        let a = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGT");
        let b = encode_dna(b"ACGTACGAACGTACTTACGTACGAACGT");
        let c = encode_dna(b"TTGGACGTACAA");
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&b),
            },
            BatchTask {
                h: TaskView::Rev(&a),
                v: TaskView::Rev(&b),
            },
            BatchTask {
                h: TaskView::Fwd(&c),
                v: TaskView::Rev(&a),
            },
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&a),
            },
        ];
        for lanes in [1, 2, 8, 16] {
            for policy in [
                BandPolicy::Grow(4),
                BandPolicy::Exact(3),
                BandPolicy::Saturate(5),
            ] {
                let report =
                    assert_batch_matches_scalar(&tasks, &sc(), XDropParams::new(12), policy, lanes);
                assert_eq!(report.lanes, lanes);
                assert_eq!(report.buckets, tasks.len().div_ceil(lanes));
                assert_eq!(report.fallbacks, 0);
            }
        }
    }

    #[test]
    fn empty_and_tiny_tasks() {
        let a = encode_dna(b"ACGT");
        let empty: [u8; 0] = [];
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&empty),
                v: TaskView::Fwd(&a),
            },
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&empty),
            },
            BatchTask {
                h: TaskView::Fwd(&empty),
                v: TaskView::Fwd(&empty),
            },
            BatchTask {
                h: TaskView::Fwd(&a[..1]),
                v: TaskView::Fwd(&a[..1]),
            },
        ];
        assert_batch_matches_scalar(&tasks, &sc(), XDropParams::new(5), BandPolicy::Exact(2), 4);
    }

    #[test]
    fn zero_delta_b_is_the_scalar_error() {
        let a = encode_dna(b"ACGT");
        let tasks = [BatchTask {
            h: TaskView::Fwd(&a),
            v: TaskView::Fwd(&a),
        }];
        let (got, _) = align_batch(&tasks, &sc(), XDropParams::new(5), BandPolicy::Exact(0));
        assert_eq!(
            got[0],
            Err(AlignError::InvalidConfig("δ_b must be nonzero"))
        );
    }

    #[test]
    fn ineligible_scorer_falls_back_per_task() {
        // Positive gap penalty: the i16 dropped-sentinel argument
        // breaks, so the whole batch must take the scalar fallback —
        // and still match the reference bit for bit.
        let a = encode_dna(b"ACGTACGTACGTACGT");
        let b = encode_dna(b"ACGAACGTACTTACGT");
        let weird = MatchMismatch::new(2, -3, 1);
        let tasks = [
            BatchTask {
                h: TaskView::Fwd(&a),
                v: TaskView::Fwd(&b),
            },
            BatchTask {
                h: TaskView::Rev(&a),
                v: TaskView::Rev(&b),
            },
        ];
        let report = assert_batch_matches_scalar(
            &tasks,
            &weird,
            XDropParams::new(9),
            BandPolicy::Grow(4),
            8,
        );
        assert_eq!(report.fallbacks, tasks.len());
        assert_eq!(report.buckets, 0);
        // Oversized score steps likewise.
        let big = MatchMismatch::new(MAX_STEP + 1, -1, -1);
        let (_, report) = align_batch(&tasks, &big, XDropParams::new(9), BandPolicy::Grow(4));
        assert_eq!(report.fallbacks, tasks.len());
    }

    /// Overflow boundary, high side: identical sequences long enough
    /// for the running best score to land exactly on `i16::MAX`. The
    /// guard band must flag the lane *before* any saturating add can
    /// go inexact, the rerun count must be reported, and the result
    /// must bit-match the `i32` scalar reference (whose best score is
    /// exactly `i16::MAX`).
    #[test]
    fn overflow_at_i16_max_triggers_rerun_and_matches_scalar() {
        let len = i16::MAX as usize; // +1 per matched symbol
        let s: Vec<u8> = (0..len).map(|i| (i % 4) as u8).collect();
        let tasks = [BatchTask {
            h: TaskView::Fwd(&s),
            v: TaskView::Fwd(&s),
        }];
        let (got, report) = align_batch(&tasks, &sc(), XDropParams::new(4), BandPolicy::Grow(4));
        assert_eq!(report.reruns, 1, "guard band must trip the rerun path");
        let out = got[0].as_ref().expect("alignment succeeds");
        assert_eq!(out.result.best_score, i16::MAX as i32);
        let reference = scalar_task(&tasks[0], &sc(), XDropParams::new(4), BandPolicy::Grow(4));
        assert_eq!(reference.as_ref().expect("reference"), out);
    }

    /// Overflow boundary, low side: with pruning effectively disabled
    /// and nothing but mismatches, live scores march down towards
    /// `i16::MIN`. The low guard must flag the lane while values are
    /// still exact, and the rerun must bit-match the reference —
    /// including every stats field of the wide saturate band.
    #[test]
    fn overflow_towards_i16_min_triggers_rerun_and_matches_scalar() {
        // h is all-0s, v all-1s: every cell is a mismatch.
        let h = vec![0u8; 3600];
        let v = vec![1u8; 3600];
        let tasks = [BatchTask {
            h: TaskView::Fwd(&h),
            v: TaskView::Fwd(&v),
        }];
        let params = XDropParams::new(1_000_000);
        let policy = BandPolicy::Saturate(8);
        let (got, report) = align_batch(&tasks, &sc(), params, policy);
        assert_eq!(report.reruns, 1, "low guard must trip the rerun path");
        let reference = scalar_task(&tasks[0], &sc(), params, policy);
        assert_eq!(&reference, &got[0]);
    }

    /// Scores inside the guard band never rerun: the fast path is
    /// exercised, not silently bypassed.
    #[test]
    fn in_range_scores_stay_on_the_fast_path() {
        let s: Vec<u8> = (0..2000).map(|i| (i % 4) as u8).collect();
        let tasks = [BatchTask {
            h: TaskView::Fwd(&s),
            v: TaskView::Fwd(&s),
        }];
        let (got, report) = align_batch(&tasks, &sc(), XDropParams::new(4), BandPolicy::Grow(4));
        assert_eq!(report.reruns, 0);
        assert_eq!(report.fallbacks, 0);
        assert_eq!(got[0].as_ref().unwrap().result.best_score, 2000);
    }

    #[test]
    fn bucketing_is_deterministic_and_by_length() {
        // 5 tasks, lane width 2: longest two share a bucket, etc.
        let s: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        let lens = [60usize, 8, 32, 8, 50];
        let tasks: Vec<BatchTask<'_>> = lens
            .iter()
            .map(|&l| BatchTask {
                h: TaskView::Fwd(&s[..l]),
                v: TaskView::Fwd(&s[..l]),
            })
            .collect();
        let report = assert_batch_matches_scalar(
            &tasks,
            &sc(),
            XDropParams::new(10),
            BandPolicy::Grow(4),
            2,
        );
        assert_eq!(report.buckets, 3);
        assert_eq!(report.reruns, 0);
    }

    #[test]
    fn max_antidiagonals_cap_matches_scalar() {
        let a = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let tasks = [BatchTask {
            h: TaskView::Fwd(&a),
            v: TaskView::Fwd(&a),
        }];
        let params = XDropParams::new(20).with_max_antidiagonals(7);
        assert_batch_matches_scalar(&tasks, &sc(), params, BandPolicy::Grow(4), 4);
    }
}
