//! Affine-gap X-Drop — the Y/Z-drop family (§2.2, §7).
//!
//! The paper implements the original Zhang X-Drop with linear gaps
//! (what SeqAn/LOGAN/ELBA use) and cites its affine-penalty cousins
//! (Y-Drop, Z-Drop) as the variants used by production pipelines
//! like minimap2. This module supplies the affine-gap antidiagonal
//! X-Drop as a library extension: three rolling antidiagonals of
//! `(H, E, F)` Gotoh states with the same dynamic band and drop rule
//! as the linear kernel.
//!
//! A cell is pruned when even its best state falls more than `X`
//! below the running best `H` score:
//! `max(H, E, F) < T − X ⇒ cell ← −∞` — the BLAST-style affine drop
//! condition.

use crate::scoring::Scorer;
use crate::seqview::{Fwd, SeqView};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::{is_dropped, XDropParams, NEG_INF};

/// Affine gap penalties (both negative): a gap of length `k` costs
/// `open + k · ext`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AffineGaps {
    /// One-time gap-open penalty.
    pub open: i32,
    /// Per-symbol gap-extension penalty.
    pub ext: i32,
}

impl AffineGaps {
    /// Creates affine penalties (`open`, `ext` negative).
    pub fn new(open: i32, ext: i32) -> Self {
        Self { open, ext }
    }

    /// Penalties equivalent to a linear gap model: `open = 0`.
    pub fn linear(gap: i32) -> Self {
        Self { open: 0, ext: gap }
    }

    /// Cost of a gap of length `k` (≤ 0).
    pub fn cost(&self, k: usize) -> i32 {
        if k == 0 {
            0
        } else {
            self.open + k as i32 * self.ext
        }
    }
}

#[derive(Clone, Copy)]
struct Cell {
    h: i32,
    e: i32,
    f: i32,
}

impl Cell {
    const DEAD: Cell = Cell {
        h: NEG_INF,
        e: NEG_INF,
        f: NEG_INF,
    };

    #[inline]
    fn best(&self) -> i32 {
        self.h.max(self.e).max(self.f)
    }
}

/// Affine-gap X-Drop semi-global extension.
///
/// # Example
///
/// ```
/// use xdrop_core::affine::{affine_xdrop, AffineGaps};
/// use xdrop_core::scoring::MatchMismatch;
/// use xdrop_core::alphabet::encode_dna;
/// use xdrop_core::XDropParams;
///
/// let h = encode_dna(b"ACGTACGTACGT");
/// let out = affine_xdrop(&h, &h, &MatchMismatch::dna_default(),
///     AffineGaps::new(-3, -1), XDropParams::new(10));
/// assert_eq!(out.result.best_score, 12);
/// ```
pub fn affine_xdrop<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    gaps: AffineGaps,
    params: XDropParams,
) -> AlignOutput {
    affine_xdrop_views(&Fwd(h), &Fwd(v), scorer, gaps, params)
}

/// [`affine_xdrop`] over directional views.
pub fn affine_xdrop_views<S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    gaps: AffineGaps,
    params: XDropParams,
) -> AlignOutput {
    let (m, n) = (h.len(), v.len());
    let x = params.x;
    let oe = gaps.open + gaps.ext;
    let delta = m.min(n) + 1;

    let mut prev2 = vec![Cell::DEAD; delta + 2];
    let mut prev = vec![Cell::DEAD; delta + 2];
    let mut cur = vec![Cell::DEAD; delta + 2];
    prev[0] = Cell {
        h: 0,
        e: NEG_INF,
        f: NEG_INF,
    };
    let mut meta_prev = (0usize, 0usize, 0usize); // (cand_lo, cand_hi, geo_lo)
    let mut meta_prev2 = (1usize, 0usize, 0usize);

    let mut best = AlignResult::empty();
    let mut t_best = 0i32;
    let (mut live_lo, mut live_hi) = (0usize, 0usize);
    let mut stats = AlignStats {
        cells_computed: 1,
        delta_w: 1,
        delta,
        work_bytes: 3 * (delta + 2) * std::mem::size_of::<Cell>(),
        ..Default::default()
    };

    let get = |buf: &[Cell], meta: (usize, usize, usize), i: usize| -> Cell {
        if i >= meta.0 && i <= meta.1 {
            buf[i - meta.2]
        } else {
            Cell::DEAD
        }
    };

    for d in 1..=(m + n) {
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        let geo_lo = d.saturating_sub(m);
        let geo_hi = d.min(n);
        let cand_lo = live_lo.max(geo_lo);
        let cand_hi = (live_hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            break;
        }
        let mut t_new = t_best;
        let mut any = false;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        for i in cand_lo..=cand_hi {
            let j = d - i;
            // E: gap in V — left neighbour (i, j−1) on diag d−1.
            let left = get(&prev, meta_prev, i);
            let e = left
                .h
                .saturating_add(oe)
                .max(left.e.saturating_add(gaps.ext));
            // F: gap in H — up neighbour (i−1, j) on diag d−1.
            let up = if i >= 1 {
                get(&prev, meta_prev, i - 1)
            } else {
                Cell::DEAD
            };
            let f = up.h.saturating_add(oe).max(up.f.saturating_add(gaps.ext));
            // H: substitution — diagonal neighbour on diag d−2.
            let hh = if i >= 1 && j >= 1 {
                let p = get(&prev2, meta_prev2, i - 1);
                if is_dropped(p.h) {
                    NEG_INF
                } else {
                    p.h + scorer.sim(v.at(i - 1), h.at(j - 1))
                }
            } else {
                NEG_INF
            };
            let mut cell = Cell {
                h: hh.max(e).max(f),
                e,
                f,
            };
            stats.cells_computed += 1;
            if !is_dropped(cell.best()) && cell.best() < t_best - x {
                cell = Cell::DEAD;
                stats.cells_dropped += 1;
            }
            cur[i - geo_lo] = cell;
            if !is_dropped(cell.best()) {
                any = true;
                new_lo = new_lo.min(i);
                new_hi = new_hi.max(i);
                if !is_dropped(cell.h) {
                    t_new = t_new.max(cell.h);
                    if cell.h > best.best_score {
                        best = AlignResult {
                            best_score: cell.h,
                            end_h: j,
                            end_v: i,
                        };
                    }
                }
            }
        }
        stats.antidiagonals += 1;
        if !any {
            break;
        }
        live_lo = new_lo;
        live_hi = new_hi;
        stats.delta_w = stats.delta_w.max(live_hi - live_lo + 1);
        t_best = t_new;
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
        meta_prev2 = meta_prev;
        meta_prev = (cand_lo, cand_hi, geo_lo);
    }
    AlignOutput {
        result: best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::scoring::MatchMismatch;
    use crate::xdrop3;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    /// Quadratic full-matrix affine extension, ground truth.
    fn affine_full(h: &[u8], v: &[u8], scorer: &MatchMismatch, gaps: AffineGaps) -> i32 {
        let (m, n) = (h.len(), v.len());
        let w = m + 1;
        let oe = gaps.open + gaps.ext;
        let mut hm = vec![NEG_INF; (n + 1) * w];
        let mut em = vec![NEG_INF; (n + 1) * w];
        let mut fm = vec![NEG_INF; (n + 1) * w];
        hm[0] = 0;
        let mut best = 0i32;
        for j in 1..=m {
            em[j] = hm[j - 1]
                .saturating_add(oe)
                .max(em[j - 1].saturating_add(gaps.ext));
            hm[j] = em[j];
            best = best.max(hm[j]);
        }
        for i in 1..=n {
            let r = i * w;
            let p = (i - 1) * w;
            fm[r] = hm[p].saturating_add(oe).max(fm[p].saturating_add(gaps.ext));
            hm[r] = fm[r];
            best = best.max(hm[r]);
            for j in 1..=m {
                em[r + j] = hm[r + j - 1]
                    .saturating_add(oe)
                    .max(em[r + j - 1].saturating_add(gaps.ext));
                fm[r + j] = hm[p + j]
                    .saturating_add(oe)
                    .max(fm[p + j].saturating_add(gaps.ext));
                let diag = if hm[p + j - 1] <= NEG_INF / 2 {
                    NEG_INF
                } else {
                    hm[p + j - 1] + scorer.sim(v[i - 1], h[j - 1])
                };
                hm[r + j] = diag.max(em[r + j]).max(fm[r + j]);
                best = best.max(hm[r + j]);
            }
        }
        best
    }

    #[test]
    fn identical_sequences() {
        let s = encode_dna(b"ACGTACGTACGTACGT");
        let out = affine_xdrop(&s, &s, &sc(), AffineGaps::new(-3, -1), XDropParams::new(10));
        assert_eq!(out.result.best_score, 16);
        assert_eq!(out.result.end_h, 16);
    }

    #[test]
    fn long_gap_cheaper_than_linear() {
        // 12-base insertion in V.
        let h = encode_dna(b"ACGTTGCACAGTCCATGGATACGTTGCACAGT");
        let v: Vec<u8> = [&h[..16], &encode_dna(b"TTTTGGGGTTTT")[..], &h[16..]].concat();
        let gaps = AffineGaps::new(-3, -1);
        let aff = affine_xdrop(&h, &v, &sc(), gaps, XDropParams::new(40));
        // 32 matches − (3 + 12) = 17.
        assert_eq!(aff.result.best_score, 32 + gaps.cost(12));
        // Linear −1/base X-Drop pays 12 for the same gap: 20.
        let lin = xdrop3::align(&h, &v, &sc(), XDropParams::new(40));
        assert_eq!(lin.result.best_score, 20);
        // With a steeper linear penalty (−2), affine wins.
        let steep = MatchMismatch::new(1, -1, -2);
        let lin2 = xdrop3::align(&h, &v, &steep, XDropParams::new(40));
        assert!(aff.result.best_score > lin2.result.best_score - 12);
    }

    #[test]
    fn matches_full_reference_with_large_x() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xAF1);
        for _ in 0..40 {
            let len = rng.gen_range(1..120);
            let h: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let mut v = Vec::new();
            for &b in &h {
                match rng.gen_range(0..10) {
                    0 => v.push(rng.gen_range(0..4)),
                    1 => {
                        v.push(rng.gen_range(0..4));
                        v.push(b);
                    }
                    2 => {}
                    _ => v.push(b),
                }
            }
            let gaps = AffineGaps::new(-4, -1);
            let full = affine_full(&h, &v, &sc(), gaps);
            let xd = affine_xdrop(&h, &v, &sc(), gaps, XDropParams::new(100_000));
            assert_eq!(xd.result.best_score, full.max(0));
        }
    }

    #[test]
    fn linear_equivalence_when_open_is_zero() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xAF2);
        for _ in 0..30 {
            let len = rng.gen_range(1..100);
            let h: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let mut v = h.clone();
            for b in v.iter_mut() {
                if rng.gen_bool(0.15) {
                    *b = (*b + 1) % 4;
                }
            }
            // open = 0 makes affine degenerate to linear; with a
            // generous X both kernels see the same search space.
            let aff = affine_xdrop(
                &h,
                &v,
                &sc(),
                AffineGaps::linear(-1),
                XDropParams::new(10_000),
            );
            let lin = xdrop3::align(&h, &v, &sc(), XDropParams::new(10_000));
            assert_eq!(aff.result.best_score, lin.result.best_score);
        }
    }

    #[test]
    fn small_x_prunes() {
        let h = encode_dna(b"ACGTTGCACAGTCCATGGAT").repeat(10);
        let mut v = h.clone();
        for b in v.iter_mut().skip(40) {
            *b = (*b + 2) % 4;
        }
        let gaps = AffineGaps::new(-4, -1);
        let small = affine_xdrop(&h, &v, &sc(), gaps, XDropParams::new(5));
        let large = affine_xdrop(&h, &v, &sc(), gaps, XDropParams::new(200));
        assert!(small.stats.cells_computed < large.stats.cells_computed);
        assert!(small.result.best_score <= large.result.best_score);
    }

    #[test]
    fn gap_cost_helper() {
        let g = AffineGaps::new(-5, -2);
        assert_eq!(g.cost(0), 0);
        assert_eq!(g.cost(1), -7);
        assert_eq!(g.cost(10), -25);
        assert_eq!(AffineGaps::linear(-1).cost(10), -10);
    }
}
