//! Lane-parallel antidiagonal kernels with runtime dispatch.
//!
//! The scalar inner loop of [`crate::xdrop2::align_views_ty`] pays a
//! per-cell branch for every liveness guard, a per-cell generic
//! [`SeqView`] fetch, and a per-cell [`Scorer`] call. Scrooge
//! (Lindegger et al.) and LOGAN (Zeni et al.) both show that
//! X-Drop-style aligners are lane-bound and that a branch-free
//! antidiagonal sweep is worth integer factors on commodity CPUs.
//! This module restructures one antidiagonal sweep into three phases
//! over contiguous slices:
//!
//! 1. **Stage** — snapshot the segment of antidiagonal `d − 2` the
//!    sweep will read into the workspace's scratch buffer *before*
//!    any in-place writes. In the scalar kernel every read of `d − 2`
//!    observes pre-overwrite values (through the one-cell `saved`
//!    temporary when writing in place, or because reads stay ahead of
//!    writes when the band base shifts), so staging the whole segment
//!    up front is exact, and it removes the serial dependence between
//!    cells.
//! 2. **Sweep** — compute raw cell scores for the *interior* of the
//!    candidate interval (the cells whose three neighbours are all
//!    stored: a contiguous range, because each guard is an interval)
//!    in fixed-width [`CHUNK`]-cell slices with no per-cell guards.
//!    The few boundary cells keep the scalar per-cell path. The
//!    [`KernelKind::Chunked`] sweep is plain Rust written for the
//!    autovectorizer; [`KernelKind::Simd`] issues explicit SSE4.1 (or
//!    NEON) `std::arch` intrinsics for the `i32` match/mismatch
//!    (DNA) case, turning the scoring into a vector
//!    compare-and-select instead of a gather.
//! 3. **Cutoff** — apply the X-Drop threshold and fold the liveness
//!    reductions (band bounds, per-diagonal best, global best) chunk
//!    at a time: a per-chunk max-reduction decides whether the
//!    strictly-ordered "first maximum wins" scan needs to run at all.
//!
//! ## Bit-identity is the contract
//!
//! Every kernel must produce the *same bytes* as the scalar reference
//! — same [`crate::stats::AlignResult`], same
//! [`crate::stats::AlignStats`] field for field, same
//! [`crate::error::AlignError`] under [`BandPolicy::Exact`]. The IPU
//! simulator's cost model consumes those stats; if a kernel changed
//! `cells_computed` by one cell, every modeled figure would silently
//! shift. The contract is enforced by the `kernel_bit_identity`
//! differential proptest (tier-1) across all [`BandPolicy`] variants,
//! both score cell types, and both extension directions. Kernel
//! choice may therefore only ever change host wall-clock, never
//! results and never modeled time.
//!
//! The one numeric subtlety: the scalar kernel uses `saturating_add`
//! for `i32` cells while the SIMD lanes use wrapping `padd`. These
//! agree because every stored cell is bounded below by
//! `NEG_INF + k·min(gap, mis)` with `k` at most the number of sweeps
//! (sequences would need to be ~10⁹ symbols long before a sum could
//! reach `i32::MIN`), and `NEG_INF = i32::MIN / 4` leaves exactly
//! that headroom by design.

use crate::error::{AlignError, Result};
use crate::scorety::ScoreTy;
use crate::scoring::{MatchMismatch, Scorer};
use crate::seqview::SeqView;
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::xdrop2::{self, BandPolicy, DiagMeta, Workspace};
use crate::{XDropParams, NEG_INF};

/// Fixed chunk width (cells) of the lane-parallel sweeps.
pub const CHUNK: usize = 16;

/// Environment variable forcing the kernel choice, overriding
/// hardware detection: `scalar`, `chunked`, `simd`, `batched`, or
/// `auto`. Unknown values fall back to detection with a one-time
/// stderr warning. Intended for tests and for A/B runs of the bench
/// harness.
pub const KERNEL_ENV: &str = "XDROP_KERNEL";

/// Which antidiagonal inner-loop implementation to run.
///
/// All variants are bit-identical; they differ only in host speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// The reference per-cell loop of
    /// [`crate::xdrop2::align_views_ty`].
    Scalar,
    /// Branch-free fixed-width chunks over contiguous slices, written
    /// for the autovectorizer; works for every score type and scorer.
    Chunked,
    /// Explicit `std::arch` SSE4.1/NEON lanes for the `i32`
    /// match/mismatch (DNA) case; every other configuration falls
    /// back to the `Chunked` sweep per sub-kernel.
    Simd,
    /// Inter-sequence batching ([`crate::batched`]): 8–32 independent
    /// alignments share each vector register in `i16` lanes, with
    /// length bucketing and an overflow-rerun safety net. Selected
    /// explicitly (never by [`KernelKind::detect`]) because its
    /// payoff comes from the slice-of-comparisons entry points in the
    /// executor; through the single-comparison API it runs a batch of
    /// one.
    Batched,
}

#[cfg(target_arch = "x86_64")]
fn simd_available() -> bool {
    std::arch::is_x86_feature_detected!("sse4.1")
}

#[cfg(target_arch = "aarch64")]
fn simd_available() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
fn simd_available() -> bool {
    false
}

/// The widest SIMD capability detected on this host, as a stable
/// lower-case string: `"avx512bw"`, `"avx2"`, `"sse4.1"`, `"sse2"`
/// (x86-64), `"neon"` (aarch64), or `"generic"`. This is the
/// *capability report* — what the hardware offers — as recorded in
/// `BENCH_xdrop.json`'s host section and the trace meta events; which
/// backend a kernel actually ran is reported separately (e.g.
/// [`crate::batched::BatchReport::sweep_backend`]).
pub fn host_simd() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512bw") {
            "avx512bw"
        } else if std::arch::is_x86_feature_detected!("avx2") {
            "avx2"
        } else if std::arch::is_x86_feature_detected!("sse4.1") {
            "sse4.1"
        } else {
            "sse2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            "neon"
        } else {
            "generic"
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "generic"
    }
}

/// Ordinal tier of [`host_simd`], for numeric consumers (the trace
/// meta event's args can only carry numbers): `4` = avx512bw,
/// `3` = avx2, `2` = sse4.1/neon, `1` = sse2, `0` = generic.
pub fn host_simd_tier() -> u32 {
    match host_simd() {
        "avx512bw" => 4,
        "avx2" => 3,
        "sse4.1" | "neon" => 2,
        "sse2" => 1,
        _ => 0,
    }
}

/// Warns on stderr — once per process per variable — that an
/// environment override held an unrecognized value and what was used
/// instead. Silent fallback hid typos like `XDROP_KERNEL=simd128` for
/// three releases; every env-dispatch path (kernel kind, sweep
/// backend) now routes its unknown-value case through here.
pub(crate) fn warn_unknown_env(once: &std::sync::Once, var: &str, value: &str, fallback: &str) {
    once.call_once(|| {
        eprintln!("warning: unrecognized {var}={value:?}; falling back to {fallback}");
    });
}

impl KernelKind {
    /// Every kernel, scalar first (bench/report ordering).
    pub const ALL: [KernelKind; 4] = [
        KernelKind::Scalar,
        KernelKind::Chunked,
        KernelKind::Simd,
        KernelKind::Batched,
    ];

    /// Stable lower-case name (`scalar` / `chunked` / `simd` /
    /// `batched`).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Chunked => "chunked",
            KernelKind::Simd => "simd",
            KernelKind::Batched => "batched",
        }
    }

    /// Parses a kernel name as accepted by [`KERNEL_ENV`]; `auto`
    /// resolves through hardware detection.
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "chunked" => Some(KernelKind::Chunked),
            "simd" => Some(KernelKind::Simd),
            "batched" => Some(KernelKind::Batched),
            "auto" => Some(KernelKind::detect()),
            _ => None,
        }
    }

    /// Hardware detection: `Simd` where SSE4.1 (x86-64) or NEON
    /// (aarch64) is available at runtime, `Chunked` otherwise.
    pub fn detect() -> KernelKind {
        if simd_available() {
            KernelKind::Simd
        } else {
            KernelKind::Chunked
        }
    }

    /// [`KernelKind::detect`] unless [`KERNEL_ENV`] forces a kernel.
    ///
    /// The environment variable is read **once per process** and the
    /// resolution cached (same discipline as
    /// [`crate::batched::SweepBackend::resolved`]): mutating
    /// `XDROP_KERNEL` at runtime — e.g. from one test while another
    /// builds an [`XDropParams`] on a sibling thread — cannot change
    /// which kernel later calls select. Programmatic selection goes
    /// through [`XDropParams::with_kernel`] or a per-request
    /// [`crate::aligner::AlignRequest`].
    pub fn auto() -> KernelKind {
        static RESOLVED: std::sync::OnceLock<KernelKind> = std::sync::OnceLock::new();
        *RESOLVED.get_or_init(KernelKind::resolve_env)
    }

    /// Uncached resolution of [`KERNEL_ENV`]: what [`KernelKind::auto`]
    /// caches on first use. Exposed so tests can pin the env-value →
    /// kernel mapping without mutating process state.
    pub fn resolve_env() -> KernelKind {
        KernelKind::resolve_env_value(std::env::var(KERNEL_ENV).ok().as_deref())
    }

    /// Pure form of [`KernelKind::resolve_env`]: resolves an override
    /// value as if `XDROP_KERNEL` held it (`None` = unset). An
    /// unrecognized value resolves through detection but warns loudly
    /// (once per process) instead of silently ignoring the override.
    pub fn resolve_env_value(value: Option<&str>) -> KernelKind {
        static WARNED: std::sync::Once = std::sync::Once::new();
        match value {
            Some(v) => KernelKind::parse(v).unwrap_or_else(|| {
                let detected = KernelKind::detect();
                warn_unknown_env(&WARNED, KERNEL_ENV, v, detected.name());
                detected
            }),
            None => KernelKind::detect(),
        }
    }
}

/// Runs the selected kernel. `Scalar` routes to the reference
/// implementation unchanged; `Chunked`/`Simd` run the three-phase
/// lane-parallel loop.
pub fn align_views<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    kind: KernelKind,
    h: &HV,
    v: &VV,
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    ws: &mut Workspace<T>,
) -> Result<AlignOutput> {
    match kind {
        KernelKind::Scalar => xdrop2::align_views_ty(h, v, scorer, params, policy, ws),
        KernelKind::Chunked | KernelKind::Simd => {
            let explicit_simd = kind == KernelKind::Simd && simd_available();
            lane_parallel(h, v, scorer, params, policy, ws, explicit_simd)
        }
        KernelKind::Batched => {
            // The inter-sequence kernel's natural entry point is
            // `crate::batched::align_batch` over a *slice* of tasks
            // (the executor hands it whole claims); through the
            // single-comparison API it runs a batch of one. It owns
            // per-lane i16 buffers with fresh-workspace semantics and
            // therefore ignores `ws` — under `BandPolicy::Grow` its
            // reported `work_bytes` match the scalar reference on a
            // *fresh* workspace (a reused pre-grown workspace would
            // legitimately report more; every other field is
            // workspace-independent).
            if T::as_i32_slice(&[]).is_some() {
                let ho = crate::seqview::collect_view(h);
                let vo = crate::seqview::collect_view(v);
                let task = crate::batched::BatchTask {
                    h: crate::batched::TaskView::Fwd(&ho),
                    v: crate::batched::TaskView::Fwd(&vo),
                };
                let (mut results, _) = crate::batched::align_batch(
                    std::slice::from_ref(&task),
                    scorer,
                    params,
                    policy,
                );
                results.pop().expect("batch of one")
            } else {
                // Non-i32 cells (the f32 dual-issue variant) have no
                // i16 lane mapping; the scalar reference is the
                // definitionally bit-identical fallback.
                xdrop2::align_views_ty(h, v, scorer, params, policy, ws)
            }
        }
    }
}

/// Stages the `d − 2` cells `diag_old(i) = buf[(i − 1) − p2.cand_lo]`
/// for `i ∈ [cand_lo, cand_hi]` into `scratch[0..width]`, writing
/// `-∞` where the `i ≥ 1 && p2.contains(i − 1)` guard fails. Runs
/// before any write of the sweep, which is exactly what the scalar
/// kernel's `saved` temporary observes.
fn stage_diag2<T: ScoreTy>(
    src: &[T],
    scratch: &mut [T],
    cand_lo: usize,
    cand_hi: usize,
    p2: DiagMeta,
) {
    let width = cand_hi - cand_lo + 1;
    let lo_v = cand_lo.max(p2.cand_lo + 1).max(1);
    let hi_v = cand_hi.min(p2.cand_hi.wrapping_add(1));
    if lo_v > hi_v || p2.cand_lo > p2.cand_hi {
        for s in &mut scratch[..width] {
            *s = T::neg_inf();
        }
        return;
    }
    let dst_off = lo_v - cand_lo;
    let len = hi_v - lo_v + 1;
    let src_off = (lo_v - 1) - p2.cand_lo;
    for s in &mut scratch[..dst_off] {
        *s = T::neg_inf();
    }
    scratch[dst_off..dst_off + len].copy_from_slice(&src[src_off..src_off + len]);
    for s in &mut scratch[dst_off + len..width] {
        *s = T::neg_inf();
    }
}

/// One boundary cell of the sweep: the exact scalar recurrence, with
/// `diag_old` read from the staged scratch segment.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn boundary_cell<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    i: usize,
    d: usize,
    cand_lo: usize,
    cur: &mut [T],
    prev: &[T],
    scratch: &[T],
    meta_prev: DiagMeta,
    h: &HV,
    v: &VV,
    scorer: &S,
    gap: i32,
) {
    let w = i - cand_lo;
    let diag_old = scratch[w];
    let diag = if diag_old.is_dropped() {
        T::neg_inf()
    } else {
        // A live staged cell implies i ≥ 1 and j = d − i ≥ 1.
        let j = d - i;
        diag_old.add_i32(scorer.sim(v.at(i - 1), h.at(j - 1)))
    };
    let left = if meta_prev.contains(i) {
        prev[i - meta_prev.cand_lo].add_i32(gap)
    } else {
        T::neg_inf()
    };
    let up = if i >= 1 && meta_prev.contains(i - 1) {
        prev[(i - 1) - meta_prev.cand_lo].add_i32(gap)
    } else {
        T::neg_inf()
    };
    cur[w] = diag.maxv(left).maxv(up);
}

/// Interior sweep, type-generic chunked variant: all guards hold for
/// every cell of `[int_lo, int_hi]`, so the chunk body is a straight
/// select/add/max chain over contiguous slices that the compiler can
/// keep in lanes.
#[allow(clippy::too_many_arguments)]
fn sweep_interior_chunked<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    int_lo: usize,
    int_hi: usize,
    d: usize,
    cand_lo: usize,
    off: usize,
    cur: &mut [T],
    prev: &[T],
    scratch: &[T],
    h: &HV,
    v: &VV,
    scorer: &S,
    gap: i32,
) {
    let mut vbuf = [0u8; CHUNK];
    let mut hbuf = [0u8; CHUNK];
    let mut i0 = int_lo;
    while i0 <= int_hi {
        let clen = CHUNK.min(int_hi - i0 + 1);
        v.fill_fwd(i0 - 1, &mut vbuf[..clen]);
        h.fill_rev(d - i0 - 1, &mut hbuf[..clen]);
        let wbase = i0 - cand_lo;
        for k in 0..clen {
            let w = wbase + k;
            let diag_old = scratch[w];
            let diag = if diag_old.is_dropped() {
                T::neg_inf()
            } else {
                diag_old.add_i32(scorer.sim(vbuf[k], hbuf[k]))
            };
            let left = prev[w + off].add_i32(gap);
            let up = prev[w + off - 1].add_i32(gap);
            cur[w] = diag.maxv(left).maxv(up);
        }
        i0 += clen;
    }
}

/// Interior sweep dispatch. For `i32` cells with a match/mismatch
/// scorer, the sweep specializes to a branch-free lane loop — with
/// explicit `std::arch` intrinsics when the caller detected the ISA
/// (`Simd`), or as plain autovectorizable Rust otherwise (`Chunked`
/// and non-x86/ARM hosts). Every other configuration (f32 cells,
/// matrix scorers) takes the fully generic chunked sweep.
#[allow(clippy::too_many_arguments)]
fn sweep_interior<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    int_lo: usize,
    int_hi: usize,
    d: usize,
    cand_lo: usize,
    off: usize,
    cur: &mut [T],
    prev: &[T],
    scratch: &[T],
    h: &HV,
    v: &VV,
    scorer: &S,
    gap: i32,
    mm: Option<MatchMismatch>,
    explicit_simd: bool,
) {
    if let Some(mm) = mm {
        if let (Some(prev_i), Some(scr_i)) = (T::as_i32_slice(prev), T::as_i32_slice(scratch)) {
            if let Some(cur_i) = T::as_i32_slice_mut(&mut *cur) {
                #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
                if explicit_simd {
                    sweep_interior_simd(
                        int_lo, int_hi, d, cand_lo, off, cur_i, prev_i, scr_i, h, v, mm,
                    );
                    return;
                }
                let _ = explicit_simd;
                sweep_interior_i32(
                    int_lo, int_hi, d, cand_lo, off, cur_i, prev_i, scr_i, h, v, mm,
                );
                return;
            }
        }
    }
    sweep_interior_chunked(
        int_lo, int_hi, d, cand_lo, off, cur, prev, scratch, h, v, scorer, gap,
    );
}

/// Portable branch-free interior sweep for `i32` DNA scoring: no
/// intrinsics, just selects and wrapping adds over equal-length
/// subslices, written so the autovectorizer can keep the chunk in
/// lanes on any target. Wrapping adds are exact here — every operand
/// is bounded below by `NEG_INF` minus a few gap penalties (see the
/// module docs on saturation headroom).
#[allow(clippy::too_many_arguments)]
fn sweep_interior_i32<HV: SeqView, VV: SeqView>(
    int_lo: usize,
    int_hi: usize,
    d: usize,
    cand_lo: usize,
    off: usize,
    cur: &mut [i32],
    prev: &[i32],
    scratch: &[i32],
    h: &HV,
    v: &VV,
    mm: MatchMismatch,
) {
    let (mat, mis, gap) = (mm.match_score, mm.mismatch_score, mm.gap_penalty);
    let mut vbuf = [0u8; CHUNK];
    let mut hbuf = [0u8; CHUNK];
    let mut i0 = int_lo;
    while i0 <= int_hi {
        let clen = CHUNK.min(int_hi - i0 + 1);
        v.fill_fwd(i0 - 1, &mut vbuf[..clen]);
        h.fill_rev(d - i0 - 1, &mut hbuf[..clen]);
        let wbase = i0 - cand_lo;
        let c = &mut cur[wbase..wbase + clen];
        let sc = &scratch[wbase..wbase + clen];
        let pl = &prev[wbase + off..wbase + off + clen];
        let pu = &prev[wbase + off - 1..wbase + off - 1 + clen];
        for k in 0..clen {
            let dold = sc[k];
            let sim = if vbuf[k] == hbuf[k] { mat } else { mis };
            let diag = if dold > NEG_INF / 2 {
                dold.wrapping_add(sim)
            } else {
                NEG_INF
            };
            let left = pl[k].wrapping_add(gap);
            let up = pu[k].wrapping_add(gap);
            c[k] = diag.max(left).max(up);
        }
        i0 += clen;
    }
}

/// Explicit-SIMD interior sweep for `i32` DNA scoring: stages each
/// chunk's symbols (one word-level unpack for [`crate::packing`]
/// views), then hands contiguous lanes to the ISA-specific kernel.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[allow(clippy::too_many_arguments)]
fn sweep_interior_simd<HV: SeqView, VV: SeqView>(
    int_lo: usize,
    int_hi: usize,
    d: usize,
    cand_lo: usize,
    off: usize,
    cur: &mut [i32],
    prev: &[i32],
    scratch: &[i32],
    h: &HV,
    v: &VV,
    mm: MatchMismatch,
) {
    let mut vbuf = [0u8; CHUNK];
    let mut hbuf = [0u8; CHUNK];
    let mut i0 = int_lo;
    while i0 <= int_hi {
        let clen = CHUNK.min(int_hi - i0 + 1);
        v.fill_fwd(i0 - 1, &mut vbuf[..clen]);
        h.fill_rev(d - i0 - 1, &mut hbuf[..clen]);
        // SAFETY: the dispatcher only selects this path after runtime
        // detection of the target feature; all slice accesses are in
        // bounds for the interior range (see the interval proof in
        // `lane_parallel`).
        unsafe {
            isa::sweep_chunk(
                cur,
                prev,
                scratch,
                &vbuf,
                &hbuf,
                clen,
                i0 - cand_lo,
                off,
                mm.match_score,
                mm.mismatch_score,
                mm.gap_penalty,
            );
        }
        i0 += clen;
    }
}

/// Cutoff + reduction over one ≤ [`CHUNK`]-cell slice, scalar
/// reference semantics. Returns `(live_mask, chunk_max, drops)`:
/// bit `k` of `live_mask` is set when cell `base + k` survives the
/// X-Drop cutoff, `chunk_max` is the maximum surviving score, and
/// `drops` counts cells pruned by this sweep's threshold.
fn cutoff_chunk_scalar<T: ScoreTy>(
    cur: &mut [T],
    base: usize,
    clen: usize,
    thr: i32,
) -> (u32, i32, u32) {
    let mut live_mask = 0u32;
    let mut drops = 0u32;
    let mut chunk_max = i32::MIN;
    for k in 0..clen {
        let s = cur[base + k];
        if !s.is_dropped() {
            let si = s.to_i32();
            if si < thr {
                cur[base + k] = T::neg_inf();
                drops += 1;
            } else {
                live_mask |= 1 << k;
                chunk_max = chunk_max.max(si);
            }
        }
    }
    (live_mask, chunk_max, drops)
}

/// [`cutoff_chunk_scalar`], vectorized for `i32` cells when the
/// dispatcher enabled explicit SIMD.
fn cutoff_chunk<T: ScoreTy>(
    cur: &mut [T],
    base: usize,
    clen: usize,
    thr: i32,
    use_simd: bool,
) -> (u32, i32, u32) {
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        if let Some(cur_i) = T::as_i32_slice_mut(&mut *cur) {
            // SAFETY: `use_simd` implies SSE4.1 was detected.
            return unsafe { isa::cutoff_chunk(cur_i, base, clen, thr) };
        }
    }
    let _ = use_simd;
    cutoff_chunk_scalar(cur, base, clen, thr)
}

/// The three-phase lane-parallel outer loop. Control flow (band
/// policies, growth, clipping, termination) is copied line for line
/// from the scalar reference; only the per-antidiagonal inner loop is
/// restructured.
#[allow(clippy::too_many_arguments)]
fn lane_parallel<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    ws: &mut Workspace<T>,
    explicit_simd: bool,
) -> Result<AlignOutput> {
    let (m, n) = (h.len(), v.len());
    let delta = m.min(n) + 1;
    let delta_b = policy.delta_b();
    if delta_b == 0 {
        return Err(AlignError::InvalidConfig("δ_b must be nonzero"));
    }
    ws.ensure(delta_b);
    let gap = scorer.gap();
    let x = params.x;
    let mm = scorer.as_match_mismatch();

    let mut metas = [
        DiagMeta {
            cand_lo: 0,
            cand_hi: 0,
        },
        DiagMeta::EMPTY,
    ];
    ws.bufs[0][0] = T::from_i32(0);

    let mut best = AlignResult::empty();
    let mut t_best = 0i32;
    let (mut live_lo, mut live_hi) = (0usize, 0usize);
    let mut prev_best_i = 0usize;
    let band_cap = |ws: &Workspace<T>| match policy {
        BandPolicy::Exact(b) | BandPolicy::Saturate(b) => b,
        BandPolicy::Grow(_) => ws.capacity(),
    };
    let mut stats = AlignStats {
        cells_computed: 1,
        delta_w: 1,
        delta,
        work_bytes: 2 * band_cap(ws) * std::mem::size_of::<T>(),
        ..Default::default()
    };

    for d in 1..=(m + n) {
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        let geo_lo = d.saturating_sub(m);
        let geo_hi = d.min(n);
        let mut cand_lo = live_lo.max(geo_lo);
        let mut cand_hi = (live_hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            break;
        }
        let width = cand_hi - cand_lo + 1;
        if width > band_cap(ws) {
            match policy {
                BandPolicy::Exact(delta_b) => {
                    return Err(AlignError::BandExceeded {
                        needed: width,
                        delta_b,
                        antidiagonal: d,
                    });
                }
                BandPolicy::Grow(_) => {
                    let new_cap = width.max(2 * ws.capacity());
                    ws.ensure(new_cap);
                    stats.work_bytes = 2 * band_cap(ws) * std::mem::size_of::<T>();
                }
                BandPolicy::Saturate(delta_b) => {
                    let half = delta_b / 2;
                    let lo_min = cand_lo;
                    let lo_max = cand_hi + 1 - delta_b;
                    let lo = prev_best_i.saturating_sub(half).clamp(lo_min, lo_max);
                    stats.cells_clipped += (width - delta_b) as u64;
                    cand_lo = lo;
                    cand_hi = lo + delta_b - 1;
                }
            }
        }
        let width = cand_hi - cand_lo + 1;

        let cur_idx = d % 2;
        let prev_idx = 1 - cur_idx;
        let meta_prev2 = metas[cur_idx];
        let meta_prev = metas[prev_idx];

        // Phase 1: stage the d − 2 segment before any write.
        debug_assert!(ws.scratch.len() >= width);
        stage_diag2(
            &ws.bufs[cur_idx],
            &mut ws.scratch,
            cand_lo,
            cand_hi,
            meta_prev2,
        );

        let mut t_new = t_best;
        let mut any_live = false;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        let mut new_best_i = prev_best_i;
        let mut best_on_diag = i32::MIN;

        {
            let (first, second) = ws.bufs.split_at_mut(1);
            let (cur, prev): (&mut [T], &[T]) = if cur_idx == 0 {
                (&mut first[0], &second[0])
            } else {
                (&mut second[0], &first[0])
            };
            let scratch: &[T] = &ws.scratch;

            // Phase 2: raw scores. The interior is the intersection of
            // the three neighbour-validity intervals (diag: staged
            // segment; left: meta_prev; up: meta_prev shifted by one)
            // with the candidate interval — contiguous by
            // construction, so everything inside is branch-free.
            let d_lo = cand_lo.max(meta_prev2.cand_lo + 1).max(1);
            let d_hi = cand_hi.min(meta_prev2.cand_hi.wrapping_add(1));
            let int_lo = d_lo.max(meta_prev.cand_lo + 1);
            let int_hi = d_hi.min(meta_prev.cand_hi);
            let (int_lo, int_hi) = if int_lo <= int_hi && meta_prev.cand_lo <= meta_prev.cand_hi {
                (int_lo, int_hi)
            } else {
                (cand_hi + 1, cand_hi) // empty: prologue covers all
            };
            let pro_end = int_lo.min(cand_hi + 1);
            for i in cand_lo..pro_end {
                boundary_cell(
                    i, d, cand_lo, cur, prev, scratch, meta_prev, h, v, scorer, gap,
                );
            }
            if int_lo <= int_hi {
                debug_assert!(cand_lo >= meta_prev.cand_lo);
                let off = cand_lo - meta_prev.cand_lo;
                sweep_interior(
                    int_lo,
                    int_hi,
                    d,
                    cand_lo,
                    off,
                    cur,
                    prev,
                    scratch,
                    h,
                    v,
                    scorer,
                    gap,
                    mm,
                    explicit_simd,
                );
            }
            for i in (int_hi + 1).max(pro_end)..=cand_hi {
                boundary_cell(
                    i, d, cand_lo, cur, prev, scratch, meta_prev, h, v, scorer, gap,
                );
            }

            // Phase 3: X-Drop cutoff + reductions, chunk at a time.
            let thr = t_best - x;
            let use_simd_cut = explicit_simd;
            let mut base = 0usize;
            while base < width {
                let clen = CHUNK.min(width - base);
                stats.cells_computed += clen as u64;
                let (live_mask, chunk_max, drops) =
                    cutoff_chunk(cur, base, clen, thr, use_simd_cut);
                stats.cells_dropped += u64::from(drops);
                if live_mask != 0 {
                    any_live = true;
                    let first_live = base + live_mask.trailing_zeros() as usize;
                    let last_live = base + (31 - live_mask.leading_zeros() as usize);
                    new_lo = new_lo.min(cand_lo + first_live);
                    new_hi = new_hi.max(cand_lo + last_live);
                    t_new = t_new.max(chunk_max);
                    // The strictly-ordered "first maximum wins" scan
                    // only needs to run when this chunk can actually
                    // improve either maximum.
                    if chunk_max > best_on_diag || chunk_max > best.best_score {
                        let mut mask = live_mask;
                        while mask != 0 {
                            let k = mask.trailing_zeros() as usize;
                            mask &= mask - 1;
                            let i = cand_lo + base + k;
                            let s = cur[base + k].to_i32();
                            if s > best_on_diag {
                                best_on_diag = s;
                                new_best_i = i;
                            }
                            if s > best.best_score {
                                best = AlignResult {
                                    best_score: s,
                                    end_h: d - i,
                                    end_v: i,
                                };
                            }
                        }
                    }
                }
                base += clen;
            }
        }

        stats.antidiagonals += 1;
        metas[cur_idx] = DiagMeta { cand_lo, cand_hi };
        if !any_live {
            break;
        }
        live_lo = new_lo;
        live_hi = new_hi;
        prev_best_i = new_best_i;
        stats.delta_w = stats.delta_w.max(live_hi - live_lo + 1);
        t_best = t_new;
    }
    Ok(AlignOutput {
        result: best,
        stats,
    })
}

/// SSE4.1 lanes for the `i32` DNA case (x86-64).
#[cfg(target_arch = "x86_64")]
mod isa {
    use super::CHUNK;
    use crate::NEG_INF;
    use std::arch::x86_64::*;

    /// Phase-2 chunk: compare-and-select scoring, select-based `-∞`
    /// absorption, unguarded neighbour loads. Wrapping `padd` is
    /// exact here (see the module docs on saturation headroom).
    ///
    /// # Safety
    /// Requires SSE4.1 and `wbase + clen ≤ cur.len()`,
    /// `wbase + off + clen ≤ prev.len()`, `wbase + off ≥ 1`.
    #[target_feature(enable = "sse4.1")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn sweep_chunk(
        cur: &mut [i32],
        prev: &[i32],
        scratch: &[i32],
        vsym: &[u8; CHUNK],
        hsym: &[u8; CHUNK],
        clen: usize,
        wbase: usize,
        off: usize,
        mat: i32,
        mis: i32,
        gap: i32,
    ) {
        debug_assert!(wbase + clen <= cur.len() && wbase + clen <= scratch.len());
        debug_assert!(wbase + off + clen <= prev.len() && wbase + off >= 1);
        let vmat = _mm_set1_epi32(mat);
        let vmis = _mm_set1_epi32(mis);
        let vgap = _mm_set1_epi32(gap);
        let vneg = _mm_set1_epi32(NEG_INF);
        let vliv = _mm_set1_epi32(NEG_INF / 2);
        let mut k = 0usize;
        while k + 4 <= clen {
            let w = wbase + k;
            let dold = _mm_loadu_si128(scratch.as_ptr().add(w) as *const __m128i);
            let a = _mm_setr_epi32(
                vsym[k] as i32,
                vsym[k + 1] as i32,
                vsym[k + 2] as i32,
                vsym[k + 3] as i32,
            );
            let b = _mm_setr_epi32(
                hsym[k] as i32,
                hsym[k + 1] as i32,
                hsym[k + 2] as i32,
                hsym[k + 3] as i32,
            );
            let sim = _mm_blendv_epi8(vmis, vmat, _mm_cmpeq_epi32(a, b));
            let live = _mm_cmpgt_epi32(dold, vliv);
            let diag = _mm_blendv_epi8(vneg, _mm_add_epi32(dold, sim), live);
            let left = _mm_add_epi32(
                _mm_loadu_si128(prev.as_ptr().add(w + off) as *const __m128i),
                vgap,
            );
            let up = _mm_add_epi32(
                _mm_loadu_si128(prev.as_ptr().add(w + off - 1) as *const __m128i),
                vgap,
            );
            let score = _mm_max_epi32(diag, _mm_max_epi32(left, up));
            _mm_storeu_si128(cur.as_mut_ptr().add(w) as *mut __m128i, score);
            k += 4;
        }
        while k < clen {
            let w = wbase + k;
            let dold = scratch[w];
            let diag = if dold > NEG_INF / 2 {
                dold.saturating_add(if vsym[k] == hsym[k] { mat } else { mis })
            } else {
                NEG_INF
            };
            let left = prev[w + off].saturating_add(gap);
            let up = prev[w + off - 1].saturating_add(gap);
            cur[w] = diag.max(left).max(up);
            k += 1;
        }
    }

    /// Phase-3 chunk: vector cutoff + movemask liveness +
    /// max-reduction. Returns `(live_mask, chunk_max, drops)` with
    /// the exact semantics of `cutoff_chunk_scalar`.
    ///
    /// # Safety
    /// Requires SSE4.1 and `base + clen ≤ cur.len()`.
    #[target_feature(enable = "sse4.1")]
    pub(super) unsafe fn cutoff_chunk(
        cur: &mut [i32],
        base: usize,
        clen: usize,
        thr: i32,
    ) -> (u32, i32, u32) {
        debug_assert!(base + clen <= cur.len());
        let vliv = _mm_set1_epi32(NEG_INF / 2);
        let vthr = _mm_set1_epi32(thr);
        let vneg = _mm_set1_epi32(NEG_INF);
        let vmin = _mm_set1_epi32(i32::MIN);
        let mut vmax = vmin;
        let mut live_mask = 0u32;
        let mut drops = 0u32;
        let mut k = 0usize;
        while k + 4 <= clen {
            let p = cur.as_mut_ptr().add(base + k);
            let s = _mm_loadu_si128(p as *const __m128i);
            let live0 = _mm_cmpgt_epi32(s, vliv);
            let cut = _mm_and_si128(live0, _mm_cmplt_epi32(s, vthr));
            let s2 = _mm_blendv_epi8(s, vneg, cut);
            _mm_storeu_si128(p as *mut __m128i, s2);
            let live = _mm_andnot_si128(cut, live0);
            live_mask |= (_mm_movemask_ps(_mm_castsi128_ps(live)) as u32) << k;
            drops += (_mm_movemask_ps(_mm_castsi128_ps(cut)) as u32).count_ones();
            vmax = _mm_max_epi32(vmax, _mm_blendv_epi8(vmin, s2, live));
            k += 4;
        }
        let m1 = _mm_max_epi32(vmax, _mm_shuffle_epi32(vmax, 0x4E));
        let m2 = _mm_max_epi32(m1, _mm_shuffle_epi32(m1, 0xB1));
        let mut chunk_max = _mm_cvtsi128_si32(m2);
        while k < clen {
            let s = cur[base + k];
            if s > NEG_INF / 2 {
                if s < thr {
                    cur[base + k] = NEG_INF;
                    drops += 1;
                } else {
                    live_mask |= 1 << k;
                    chunk_max = chunk_max.max(s);
                }
            }
            k += 1;
        }
        (live_mask, chunk_max, drops)
    }
}

/// NEON lanes for the `i32` DNA case (aarch64). Mirrors the SSE4.1
/// phase-2 sweep; phase 3 stays on the scalar chunk reduction there.
#[cfg(target_arch = "aarch64")]
mod isa {
    use super::CHUNK;
    use crate::NEG_INF;
    use std::arch::aarch64::*;

    /// See the SSE4.1 `sweep_chunk`: same contract, NEON intrinsics.
    ///
    /// # Safety
    /// Requires NEON and the same bounds as the SSE4.1 variant.
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn sweep_chunk(
        cur: &mut [i32],
        prev: &[i32],
        scratch: &[i32],
        vsym: &[u8; CHUNK],
        hsym: &[u8; CHUNK],
        clen: usize,
        wbase: usize,
        off: usize,
        mat: i32,
        mis: i32,
        gap: i32,
    ) {
        debug_assert!(wbase + clen <= cur.len() && wbase + clen <= scratch.len());
        debug_assert!(wbase + off + clen <= prev.len() && wbase + off >= 1);
        let vmat = vdupq_n_s32(mat);
        let vmis = vdupq_n_s32(mis);
        let vgap = vdupq_n_s32(gap);
        let vneg = vdupq_n_s32(NEG_INF);
        let vliv = vdupq_n_s32(NEG_INF / 2);
        let mut k = 0usize;
        while k + 4 <= clen {
            let w = wbase + k;
            let dold = vld1q_s32(scratch.as_ptr().add(w));
            let a = [
                vsym[k] as i32,
                vsym[k + 1] as i32,
                vsym[k + 2] as i32,
                vsym[k + 3] as i32,
            ];
            let b = [
                hsym[k] as i32,
                hsym[k + 1] as i32,
                hsym[k + 2] as i32,
                hsym[k + 3] as i32,
            ];
            let sim = vbslq_s32(
                vceqq_s32(vld1q_s32(a.as_ptr()), vld1q_s32(b.as_ptr())),
                vmat,
                vmis,
            );
            let live = vcgtq_s32(dold, vliv);
            let diag = vbslq_s32(live, vaddq_s32(dold, sim), vneg);
            let left = vaddq_s32(vld1q_s32(prev.as_ptr().add(w + off)), vgap);
            let up = vaddq_s32(vld1q_s32(prev.as_ptr().add(w + off - 1)), vgap);
            let score = vmaxq_s32(diag, vmaxq_s32(left, up));
            vst1q_s32(cur.as_mut_ptr().add(w), score);
            k += 4;
        }
        while k < clen {
            let w = wbase + k;
            let dold = scratch[w];
            let diag = if dold > NEG_INF / 2 {
                dold.saturating_add(if vsym[k] == hsym[k] { mat } else { mis })
            } else {
                NEG_INF
            };
            let left = prev[w + off].saturating_add(gap);
            let up = prev[w + off - 1].saturating_add(gap);
            cur[w] = diag.max(left).max(up);
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::packing::{PackedRev, PackedSeq};
    use crate::scoring::{Blosum62, MatchMismatch};
    use crate::seqview::{Fwd, Rev};
    use crate::Alphabet;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    fn mutated(h: &[u8], stride: usize) -> Vec<u8> {
        let mut v = h.to_vec();
        for i in (stride..v.len()).step_by(stride) {
            v[i] = (v[i] + 1) % 4;
        }
        v
    }

    fn assert_identical_output(
        a: &Result<AlignOutput>,
        b: &Result<AlignOutput>,
        ctx: &dyn std::fmt::Debug,
    ) {
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.result, b.result, "result {ctx:?}");
                assert_eq!(a.stats, b.stats, "stats {ctx:?}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "error {ctx:?}"),
            (a, b) => panic!("outcome mismatch {ctx:?}: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn names_parse_roundtrip() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(KernelKind::parse("SIMD"), Some(KernelKind::Simd));
        assert_eq!(KernelKind::parse("  chunked "), Some(KernelKind::Chunked));
        assert!(KernelKind::parse("avx1024").is_none());
        // `auto` resolves to whatever detection says, never Scalar.
        assert_ne!(KernelKind::parse("auto"), Some(KernelKind::Scalar));
    }

    #[test]
    fn env_knob_resolution_is_pure() {
        // The override → kernel mapping, without `set_var`: mutating
        // the real environment from a test leaks into sibling threads
        // (`XDropParams::new` reads the cached resolution), so the
        // mapping is pinned through the pure resolver instead. The
        // end-to-end env path runs in a subprocess from
        // `tests/kernel_identity.rs`.
        assert_eq!(
            KernelKind::resolve_env_value(Some("scalar")),
            KernelKind::Scalar
        );
        assert_eq!(
            KernelKind::resolve_env_value(Some("chunked")),
            KernelKind::Chunked
        );
        assert_eq!(
            KernelKind::resolve_env_value(Some("definitely-not-a-kernel")),
            KernelKind::detect()
        );
        assert_eq!(KernelKind::resolve_env_value(None), KernelKind::detect());
        // And the cached reader agrees with an uncached resolution of
        // the (unmutated) process environment.
        assert_eq!(KernelKind::auto(), KernelKind::resolve_env());
    }

    #[test]
    fn all_kernels_identical_on_fixed_cases() {
        let base = encode_dna(&b"ACGTTGCACAGTCCATGGAT".repeat(12)); // 240 bp
        let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (base.clone(), base.clone()),
            (base.clone(), mutated(&base, 7)),
            (base.clone(), mutated(&base, 3)),
            (base[..60].to_vec(), mutated(&base, 5)),
            (encode_dna(b"A"), encode_dna(b"C")),
            (encode_dna(b"ACGT"), Vec::new()),
        ];
        let policies = [
            BandPolicy::Exact(512),
            BandPolicy::Grow(2),
            BandPolicy::Grow(64),
            BandPolicy::Saturate(4),
            BandPolicy::Saturate(17),
        ];
        for (h, v) in &cases {
            for policy in policies {
                for x in [0, 3, 25, 10_000] {
                    let p = XDropParams::new(x);
                    let run = |kind| {
                        let mut ws = Workspace::<i32>::new();
                        align_views(kind, &Fwd(h), &Fwd(v), &sc(), p, policy, &mut ws)
                    };
                    let scalar = run(KernelKind::Scalar);
                    for kind in [KernelKind::Chunked, KernelKind::Simd, KernelKind::Batched] {
                        assert_identical_output(&scalar, &run(kind), &(kind, policy, x));
                    }
                }
            }
        }
    }

    #[test]
    fn exact_band_error_is_identical() {
        let s = encode_dna(&b"ACGTACGTACGTACGT".repeat(4));
        let p = XDropParams::new(10_000);
        for kind in [KernelKind::Chunked, KernelKind::Simd, KernelKind::Batched] {
            let mut ws = Workspace::<i32>::new();
            let err = align_views(
                kind,
                &Fwd(&s),
                &Fwd(&s),
                &sc(),
                p,
                BandPolicy::Exact(3),
                &mut ws,
            )
            .unwrap_err();
            let mut ws = Workspace::<i32>::new();
            let ref_err = align_views(
                KernelKind::Scalar,
                &Fwd(&s),
                &Fwd(&s),
                &sc(),
                p,
                BandPolicy::Exact(3),
                &mut ws,
            )
            .unwrap_err();
            assert_eq!(err, ref_err, "{kind:?}");
        }
    }

    #[test]
    fn packed_and_reverse_views_identical() {
        let h = encode_dna(&b"ACGTTGCACAGTCCATGGAT".repeat(10));
        let v = mutated(&h, 9);
        let hp = PackedSeq::pack(&h, Alphabet::Dna);
        let vp = PackedSeq::pack(&v, Alphabet::Dna);
        let p = XDropParams::new(30);
        for policy in [BandPolicy::Grow(8), BandPolicy::Saturate(16)] {
            let mut ws = Workspace::<i32>::new();
            let scalar = align_views(
                KernelKind::Scalar,
                &Fwd(&h),
                &Fwd(&v),
                &sc(),
                p,
                policy,
                &mut ws,
            );
            for kind in [KernelKind::Chunked, KernelKind::Simd, KernelKind::Batched] {
                let mut ws = Workspace::<i32>::new();
                let packed = align_views(kind, &hp, &vp, &sc(), p, policy, &mut ws);
                assert_identical_output(&scalar, &packed, &("packed", kind, policy));
                let mut ws = Workspace::<i32>::new();
                let rev = align_views(kind, &PackedRev(&hp), &Rev(&v), &sc(), p, policy, &mut ws);
                let mut ws = Workspace::<i32>::new();
                let rev_ref = align_views(
                    KernelKind::Scalar,
                    &Rev(&h),
                    &Rev(&v),
                    &sc(),
                    p,
                    policy,
                    &mut ws,
                );
                assert_identical_output(&rev_ref, &rev, &("packed-rev", kind, policy));
            }
        }
    }

    #[test]
    fn f32_cells_identical_across_kernels() {
        let h = encode_dna(&b"ACGTTGCACAGTCCATGGAT".repeat(8));
        let v = mutated(&h, 6);
        let p = XDropParams::new(20);
        for policy in [BandPolicy::Grow(4), BandPolicy::Saturate(8)] {
            let mut ws = Workspace::<f32>::new();
            let scalar = align_views(
                KernelKind::Scalar,
                &Fwd(&h),
                &Fwd(&v),
                &sc(),
                p,
                policy,
                &mut ws,
            );
            for kind in [KernelKind::Chunked, KernelKind::Simd, KernelKind::Batched] {
                let mut ws = Workspace::<f32>::new();
                let got = align_views(kind, &Fwd(&h), &Fwd(&v), &sc(), p, policy, &mut ws);
                assert_identical_output(&scalar, &got, &("f32", kind, policy));
            }
        }
    }

    #[test]
    fn blosum62_falls_back_and_stays_identical() {
        use crate::alphabet::encode_protein;
        let h = encode_protein(&b"MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ".repeat(3));
        let mut v = h.clone();
        for i in (5..v.len()).step_by(11) {
            v[i] = (v[i] + 1) % 20;
        }
        let scb = Blosum62::pastis_default();
        let p = XDropParams::new(12);
        let mut ws = Workspace::<i32>::new();
        let scalar = align_views(
            KernelKind::Scalar,
            &Fwd(&h),
            &Fwd(&v),
            &scb,
            p,
            BandPolicy::Grow(8),
            &mut ws,
        );
        for kind in [KernelKind::Chunked, KernelKind::Simd, KernelKind::Batched] {
            let mut ws = Workspace::<i32>::new();
            let got = align_views(
                kind,
                &Fwd(&h),
                &Fwd(&v),
                &scb,
                p,
                BandPolicy::Grow(8),
                &mut ws,
            );
            assert_identical_output(&scalar, &got, &("blosum", kind));
        }
    }

    #[test]
    fn workspace_shared_across_kernels_is_clean() {
        // One workspace reused by different kernels back to back —
        // the staging scratch of one call must not leak into the
        // next.
        let h = encode_dna(&b"ACGTTGCACAGTCCATGGAT".repeat(6));
        let v = mutated(&h, 4);
        let p = XDropParams::new(15);
        let mut ws = Workspace::<i32>::new();
        let mut outs = Vec::new();
        for kind in [
            KernelKind::Simd,
            KernelKind::Scalar,
            KernelKind::Chunked,
            KernelKind::Scalar,
        ] {
            outs.push(
                align_views(
                    kind,
                    &Fwd(&h),
                    &Fwd(&v),
                    &sc(),
                    p,
                    BandPolicy::Grow(4),
                    &mut ws,
                )
                .unwrap(),
            );
        }
        for o in &outs[1..] {
            assert_eq!(o.result, outs[0].result);
            assert_eq!(o.stats, outs[0].stats);
        }
    }
}
