//! Seed-and-extend alignment.
//!
//! ELBA and PASTIS hand the aligner a pair of sequences plus the
//! position of a k-mer seed shared by both. The pairwise alignment is
//! then the *left extension* (backwards from the seed start) plus the
//! seed itself plus the *right extension* (forwards from the seed
//! end). The backwards pass uses the [`crate::seqview::Rev`] view —
//! the paper's `op(·)` transform — so the sequences are never copied
//! or reversed, and a single resident copy serves any number of seeds
//! (§4.1.1).

use crate::aligner::{self, AlignerKind};
use crate::error::{AlignError, Result};
use crate::ksw2::Ksw2Params;
use crate::scoring::Scorer;
use crate::seqview::{Fwd, Rev};
use crate::stats::{AlignOutput, AlignStats};
use crate::xdrop2::{self, BandPolicy};
use crate::xdrop3;
use crate::XDropParams;

/// A k-mer seed shared by two sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SeedMatch {
    /// Start of the seed on `H`.
    pub h_pos: usize,
    /// Start of the seed on `V`.
    pub v_pos: usize,
    /// Seed length `k`.
    pub k: usize,
}

impl SeedMatch {
    /// A seed of length `k` at `(h_pos, v_pos)`.
    pub fn new(h_pos: usize, v_pos: usize, k: usize) -> Self {
        Self { h_pos, v_pos, k }
    }

    /// Checks the seed fits inside both sequences.
    pub fn validate(&self, h_len: usize, v_len: usize) -> Result<()> {
        if self.h_pos + self.k > h_len || self.v_pos + self.k > v_len {
            Err(AlignError::SeedOutOfBounds {
                seed: (self.h_pos, self.v_pos),
                lens: (h_len, v_len),
            })
        } else {
            Ok(())
        }
    }
}

/// Which antidiagonal kernel performs the extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The memory-restricted two-antidiagonal kernel (Algorithm 1).
    TwoDiag(BandPolicy),
    /// The classical three-antidiagonal kernel.
    ThreeDiag,
    /// Any other engine of the [`crate::aligner`] facade (affine,
    /// Hirschberg, ksw2, …), dispatched per side through
    /// [`aligner::extend_views`].
    Aligner(AlignerKind),
}

impl Backend {
    /// Maps a facade [`AlignerKind`] onto the extension backend that
    /// implements it. The X-Drop family stays on its dedicated fast
    /// paths — `XDrop2` keeps the caller's band `policy`, `XDrop3`
    /// has its intrinsic `3δ` band, and `LoganBand` is `XDrop2` under
    /// LOGAN's fixed saturating window for the given `x` — while the
    /// remaining engines route through the facade dispatcher.
    pub fn for_kind(kind: AlignerKind, x: i32, policy: BandPolicy) -> Backend {
        match kind {
            AlignerKind::XDrop2 => Backend::TwoDiag(policy),
            AlignerKind::XDrop3 => Backend::ThreeDiag,
            AlignerKind::LoganBand => {
                Backend::TwoDiag(BandPolicy::Saturate(aligner::logan_band_width(x)))
            }
            other => Backend::Aligner(other),
        }
    }

    /// Scores the seed region in the backend's own scoring scale.
    ///
    /// Every engine but ksw2 shares the caller's [`Scorer`]; ksw2
    /// scores in its own fixed scale, so its seed must be scored with
    /// the same `mat` constant its extensions use or the
    /// left + seed + right sum would mix scales. Like minimap2, the
    /// ksw2 convention trusts the seed (`k·mat`) rather than
    /// re-scoring its symbols — the baselines runner does the same,
    /// which keeps the facade and runner score-identical.
    fn seed_score<S: Scorer>(&self, x: i32, h_seed: &[u8], v_seed: &[u8], scorer: &S) -> i32 {
        match self {
            Backend::Aligner(AlignerKind::Ksw2) => h_seed.len() as i32 * Ksw2Params::from_x(x).mat,
            _ => scorer.seed_score(h_seed, v_seed),
        }
    }
}

/// Result of extending one seed in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExtendOutcome {
    /// Total alignment score: left + seed + right.
    pub score: i32,
    /// Score of the seed region itself.
    pub seed_score: i32,
    /// Left extension outcome.
    pub left: AlignOutput,
    /// Right extension outcome.
    pub right: AlignOutput,
    /// Aligned interval on `H`, half-open `[start, end)`.
    pub h_span: (usize, usize),
    /// Aligned interval on `V`, half-open `[start, end)`.
    pub v_span: (usize, usize),
}

impl ExtendOutcome {
    /// Combined work/memory statistics of both extensions.
    pub fn stats(&self) -> AlignStats {
        let mut s = self.left.stats;
        s.merge(&self.right.stats);
        s
    }

    /// Length of the aligned region on `H`.
    pub fn h_len(&self) -> usize {
        self.h_span.1 - self.h_span.0
    }

    /// Length of the aligned region on `V`.
    pub fn v_len(&self) -> usize {
        self.v_span.1 - self.v_span.0
    }
}

/// A reusable seed extender: owns the kernel workspaces so thousands
/// of extensions in a batch share two (or three) band buffers —
/// exactly the memory discipline of one IPU hardware thread.
#[derive(Debug)]
pub struct Extender {
    params: XDropParams,
    backend: Backend,
    ws2: xdrop2::Workspace<i32>,
    ws3: xdrop3::Workspace<i32>,
}

impl Extender {
    /// Creates an extender with the given X-Drop parameters and
    /// kernel backend.
    pub fn new(params: XDropParams, backend: Backend) -> Self {
        Self {
            params,
            backend,
            ws2: xdrop2::Workspace::new(),
            ws3: xdrop3::Workspace::new(),
        }
    }

    /// The configured X-Drop parameters.
    pub fn params(&self) -> XDropParams {
        self.params
    }

    /// Extends `seed` on `h` × `v` in both directions.
    pub fn extend<S: Scorer>(
        &mut self,
        h: &[u8],
        v: &[u8],
        seed: SeedMatch,
        scorer: &S,
    ) -> Result<ExtendOutcome> {
        seed.validate(h.len(), v.len())?;
        let (h_left, h_seed, h_right) = split3(h, seed.h_pos, seed.k);
        let (v_left, v_seed, v_right) = split3(v, seed.v_pos, seed.k);

        let (left, right) = match self.backend {
            Backend::TwoDiag(policy) => (
                crate::kernel::align_views(
                    self.params.kernel,
                    &Rev(h_left),
                    &Rev(v_left),
                    scorer,
                    self.params,
                    policy,
                    &mut self.ws2,
                )?,
                crate::kernel::align_views(
                    self.params.kernel,
                    &Fwd(h_right),
                    &Fwd(v_right),
                    scorer,
                    self.params,
                    policy,
                    &mut self.ws2,
                )?,
            ),
            Backend::ThreeDiag => (
                xdrop3::align_views_ty(
                    &Rev(h_left),
                    &Rev(v_left),
                    scorer,
                    self.params,
                    &mut self.ws3,
                ),
                xdrop3::align_views_ty(
                    &Fwd(h_right),
                    &Fwd(v_right),
                    scorer,
                    self.params,
                    &mut self.ws3,
                ),
            ),
            Backend::Aligner(kind) => (
                aligner::extend_views(
                    kind,
                    &Rev(h_left),
                    &Rev(v_left),
                    scorer,
                    self.params,
                    BandPolicy::Grow(64),
                    &mut self.ws2,
                    &mut self.ws3,
                )?,
                aligner::extend_views(
                    kind,
                    &Fwd(h_right),
                    &Fwd(v_right),
                    scorer,
                    self.params,
                    BandPolicy::Grow(64),
                    &mut self.ws2,
                    &mut self.ws3,
                )?,
            ),
        };

        let seed_score = self
            .backend
            .seed_score(self.params.x, h_seed, v_seed, scorer);
        Ok(ExtendOutcome {
            score: left.result.best_score + seed_score + right.result.best_score,
            seed_score,
            left,
            right,
            h_span: (
                seed.h_pos - left.result.end_h,
                seed.h_pos + seed.k + right.result.end_h,
            ),
            v_span: (
                seed.v_pos - left.result.end_v,
                seed.v_pos + seed.k + right.result.end_v,
            ),
        })
    }

    /// Extends a single direction only — used by the LR-splitting
    /// optimization (§4.1.2), where left and right extensions are
    /// independent work units assigned to different threads.
    pub fn extend_one_side<S: Scorer>(
        &mut self,
        h: &[u8],
        v: &[u8],
        seed: SeedMatch,
        scorer: &S,
        side: Side,
    ) -> Result<AlignOutput> {
        seed.validate(h.len(), v.len())?;
        let (h_left, _, h_right) = split3(h, seed.h_pos, seed.k);
        let (v_left, _, v_right) = split3(v, seed.v_pos, seed.k);
        match (side, self.backend) {
            (Side::Left, Backend::TwoDiag(policy)) => crate::kernel::align_views(
                self.params.kernel,
                &Rev(h_left),
                &Rev(v_left),
                scorer,
                self.params,
                policy,
                &mut self.ws2,
            ),
            (Side::Right, Backend::TwoDiag(policy)) => crate::kernel::align_views(
                self.params.kernel,
                &Fwd(h_right),
                &Fwd(v_right),
                scorer,
                self.params,
                policy,
                &mut self.ws2,
            ),
            (Side::Left, Backend::ThreeDiag) => Ok(xdrop3::align_views_ty(
                &Rev(h_left),
                &Rev(v_left),
                scorer,
                self.params,
                &mut self.ws3,
            )),
            (Side::Right, Backend::ThreeDiag) => Ok(xdrop3::align_views_ty(
                &Fwd(h_right),
                &Fwd(v_right),
                scorer,
                self.params,
                &mut self.ws3,
            )),
            (Side::Left, Backend::Aligner(kind)) => aligner::extend_views(
                kind,
                &Rev(h_left),
                &Rev(v_left),
                scorer,
                self.params,
                BandPolicy::Grow(64),
                &mut self.ws2,
                &mut self.ws3,
            ),
            (Side::Right, Backend::Aligner(kind)) => aligner::extend_views(
                kind,
                &Fwd(h_right),
                &Fwd(v_right),
                scorer,
                self.params,
                BandPolicy::Grow(64),
                &mut self.ws2,
                &mut self.ws3,
            ),
        }
    }
}

/// One direction of a seed extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Side {
    /// Extension to the left of the seed (backwards access).
    Left,
    /// Extension to the right of the seed (forwards access).
    Right,
}

#[inline(always)]
fn split3(s: &[u8], pos: usize, k: usize) -> (&[u8], &[u8], &[u8]) {
    (&s[..pos], &s[pos..pos + k], &s[pos + k..])
}

/// A shared checkout pool of [`Extender`]s for host-side thread
/// pools.
///
/// Each [`Extender`] owns grown band workspaces; rebuilding one per
/// work chunk (the pre-pool behaviour) re-pays the allocation and
/// growth on every chunk. Worker threads instead
/// [`checkout`](ExtenderPool::checkout) an extender for their whole
/// lifetime — the guard returns it on drop, so a later pool (e.g.
/// the batch-replay stage) reuses the already-grown buffers.
#[derive(Debug)]
pub struct ExtenderPool {
    params: XDropParams,
    backend: Backend,
    free: std::sync::Mutex<Vec<Extender>>,
}

impl ExtenderPool {
    /// An empty pool; extenders are created lazily on checkout.
    pub fn new(params: XDropParams, backend: Backend) -> Self {
        Self {
            params,
            backend,
            free: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Takes an idle extender, or creates one when none is free.
    pub fn checkout(&self) -> PooledExtender<'_> {
        let ext = self
            .free
            .lock()
            .expect("extender pool poisoned")
            .pop()
            .unwrap_or_else(|| Extender::new(self.params, self.backend));
        PooledExtender {
            pool: self,
            ext: Some(ext),
        }
    }

    /// Number of idle extenders currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("extender pool poisoned").len()
    }
}

/// Checkout guard for an [`ExtenderPool`]; derefs to the
/// [`Extender`] and returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledExtender<'a> {
    pool: &'a ExtenderPool,
    ext: Option<Extender>,
}

impl std::ops::Deref for PooledExtender<'_> {
    type Target = Extender;
    fn deref(&self) -> &Extender {
        self.ext.as_ref().expect("extender taken")
    }
}

impl std::ops::DerefMut for PooledExtender<'_> {
    fn deref_mut(&mut self) -> &mut Extender {
        self.ext.as_mut().expect("extender taken")
    }
}

impl Drop for PooledExtender<'_> {
    fn drop(&mut self) {
        if let Some(ext) = self.ext.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(ext);
            }
        }
    }
}

/// One-shot convenience wrapper around [`Extender::extend`] using the
/// memory-restricted kernel with a growing band.
pub fn extend_seed<S: Scorer>(
    h: &[u8],
    v: &[u8],
    seed: SeedMatch,
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> Result<ExtendOutcome> {
    Extender::new(params, Backend::TwoDiag(policy)).extend(h, v, seed, scorer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::scoring::MatchMismatch;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    fn params() -> XDropParams {
        XDropParams::new(10)
    }

    #[test]
    fn identical_sequences_full_span() {
        let s = encode_dna(b"ACGTACGTACGTACGTACGT");
        let seed = SeedMatch::new(8, 8, 4);
        let out = extend_seed(&s, &s, seed, &sc(), params(), BandPolicy::Grow(8)).unwrap();
        assert_eq!(out.score, s.len() as i32);
        assert_eq!(out.h_span, (0, s.len()));
        assert_eq!(out.v_span, (0, s.len()));
        assert_eq!(out.seed_score, 4);
    }

    #[test]
    fn seed_at_origin_has_empty_left() {
        let s = encode_dna(b"ACGTACGT");
        let seed = SeedMatch::new(0, 0, 4);
        let out = extend_seed(&s, &s, seed, &sc(), params(), BandPolicy::Grow(8)).unwrap();
        assert_eq!(out.left.result.best_score, 0);
        assert_eq!(out.score, 8);
    }

    #[test]
    fn seed_at_end_has_empty_right() {
        let s = encode_dna(b"ACGTACGT");
        let seed = SeedMatch::new(4, 4, 4);
        let out = extend_seed(&s, &s, seed, &sc(), params(), BandPolicy::Grow(8)).unwrap();
        assert_eq!(out.right.result.best_score, 0);
        assert_eq!(out.score, 8);
    }

    #[test]
    fn out_of_bounds_seed_rejected() {
        let s = encode_dna(b"ACGT");
        let err = extend_seed(
            &s,
            &s,
            SeedMatch::new(2, 2, 4),
            &sc(),
            params(),
            BandPolicy::Grow(8),
        )
        .unwrap_err();
        assert!(matches!(err, AlignError::SeedOutOfBounds { .. }));
    }

    #[test]
    fn divergent_flanks_stop_extension() {
        // Common 6-mer seed, flanks completely different.
        let h = encode_dna(b"AAAAAAACGTCGTTTTTTT");
        let v = encode_dna(b"CCCCCCCGTCGTGGGGGGG");
        let seed = SeedMatch::new(7, 6, 6);
        assert_eq!(&h[7..13], &v[6..12]);
        let out = extend_seed(
            &h,
            &v,
            seed,
            &sc(),
            XDropParams::new(2),
            BandPolicy::Grow(8),
        )
        .unwrap();
        assert_eq!(out.score, 6);
        assert_eq!(out.h_span, (7, 13));
        assert_eq!(out.v_span, (6, 12));
    }

    #[test]
    fn backends_agree() {
        let h = encode_dna(b"ACGTACGTAAGGTACGTACGTACGTTTGGACGT");
        let v = encode_dna(b"ACGTACGAAAGGTACGTACGTACTTTTGGACGA");
        let seed = SeedMatch::new(12, 12, 8);
        let mut two = Extender::new(params(), Backend::TwoDiag(BandPolicy::Grow(8)));
        let mut three = Extender::new(params(), Backend::ThreeDiag);
        let a = two.extend(&h, &v, seed, &sc()).unwrap();
        let b = three.extend(&h, &v, seed, &sc()).unwrap();
        assert_eq!(a.score, b.score);
        assert_eq!(a.h_span, b.h_span);
        assert_eq!(a.v_span, b.v_span);
    }

    #[test]
    fn one_side_matches_both_sides() {
        let h = encode_dna(b"ACGTACGTAAGGTACGTACGTACGTTTGGACGT");
        let v = encode_dna(b"ACGTACGAAAGGTACGTACGTACTTTTGGACGA");
        let seed = SeedMatch::new(12, 12, 8);
        let mut e = Extender::new(params(), Backend::TwoDiag(BandPolicy::Grow(8)));
        let both = e.extend(&h, &v, seed, &sc()).unwrap();
        let l = e.extend_one_side(&h, &v, seed, &sc(), Side::Left).unwrap();
        let r = e.extend_one_side(&h, &v, seed, &sc(), Side::Right).unwrap();
        assert_eq!(l.result, both.left.result);
        assert_eq!(r.result, both.right.result);
    }

    #[test]
    fn stats_merge_left_right() {
        let s = encode_dna(b"ACGTACGTACGTACGTACGT");
        let out = extend_seed(
            &s,
            &s,
            SeedMatch::new(8, 8, 4),
            &sc(),
            params(),
            BandPolicy::Grow(8),
        )
        .unwrap();
        let merged = out.stats();
        assert_eq!(
            merged.cells_computed,
            out.left.stats.cells_computed + out.right.stats.cells_computed
        );
        assert_eq!(out.h_len(), 20);
        assert_eq!(out.v_len(), 20);
    }

    #[test]
    fn pool_reuses_returned_extenders() {
        let pool = ExtenderPool::new(params(), Backend::TwoDiag(BandPolicy::Grow(8)));
        assert_eq!(pool.idle(), 0);
        let s = encode_dna(b"ACGTACGTACGTACGTACGT");
        {
            let mut e = pool.checkout();
            let out = e.extend(&s, &s, SeedMatch::new(8, 8, 4), &sc()).unwrap();
            assert_eq!(out.score, s.len() as i32);
            // A second concurrent checkout creates a fresh extender.
            let _e2 = pool.checkout();
            assert_eq!(pool.idle(), 0);
        }
        // Both guards dropped: two extenders parked for reuse.
        assert_eq!(pool.idle(), 2);
        let _e = pool.checkout();
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn for_kind_maps_the_xdrop_family_to_fast_paths() {
        let policy = BandPolicy::Grow(8);
        assert_eq!(
            Backend::for_kind(AlignerKind::XDrop2, 10, policy),
            Backend::TwoDiag(policy)
        );
        assert_eq!(
            Backend::for_kind(AlignerKind::XDrop3, 10, policy),
            Backend::ThreeDiag
        );
        assert_eq!(
            Backend::for_kind(AlignerKind::LoganBand, 10, policy),
            Backend::TwoDiag(BandPolicy::Saturate(aligner::logan_band_width(10)))
        );
        assert_eq!(
            Backend::for_kind(AlignerKind::Ksw2, 10, policy),
            Backend::Aligner(AlignerKind::Ksw2)
        );
    }

    #[test]
    fn affine_linear_backend_matches_xdrop_on_generous_x() {
        let h = encode_dna(b"ACGTACGTAAGGTACGTACGTACGTTTGGACGT");
        let v = encode_dna(b"ACGTACGAAAGGTACGTACGTACTTTTGGACGA");
        let seed = SeedMatch::new(12, 12, 8);
        let p = XDropParams::new(100);
        let mut three = Extender::new(p, Backend::ThreeDiag);
        let mut aff = Extender::new(p, Backend::Aligner(AlignerKind::Affine));
        let a = three.extend(&h, &v, seed, &sc()).unwrap();
        let b = aff.extend(&h, &v, seed, &sc()).unwrap();
        assert_eq!(a.score, b.score);
        assert_eq!(a.h_span, b.h_span);
        assert_eq!(a.v_span, b.v_span);
    }

    #[test]
    fn ksw2_backend_scores_seed_in_its_own_scale() {
        let s = encode_dna(b"ACGTACGTACGTACGTACGT");
        let seed = SeedMatch::new(8, 8, 4);
        let mut e = Extender::new(params(), Backend::Aligner(AlignerKind::Ksw2));
        let out = e.extend(&s, &s, seed, &sc()).unwrap();
        // ksw2's scale is mat=2 per matching seed symbol, not the
        // caller scorer's +1 — and the total must stay in one scale.
        assert_eq!(out.seed_score, 2 * seed.k as i32);
        assert_eq!(
            out.score,
            out.left.result.best_score + out.seed_score + out.right.result.best_score
        );
        assert_eq!(out.h_span, (0, s.len()));
    }

    #[test]
    fn indel_shifts_span() {
        // V has a 2-base insertion left of the seed.
        let h = encode_dna(b"TTTTACGTACGTGGGG");
        let v = encode_dna(b"TTTTGAACGTACGTGGGG");
        let seed = SeedMatch::new(8, 10, 4);
        let out = extend_seed(&h, &v, seed, &sc(), params(), BandPolicy::Grow(8)).unwrap();
        // Full H consumed; V consumed fully too (16 vs 18 symbols).
        assert_eq!(out.h_span, (0, 16));
        assert_eq!(out.v_span, (0, 18));
        // 16 matches - 2 gaps
        assert_eq!(out.score, 16 - 2);
    }
}
