//! Alignment results and instrumentation.
//!
//! Every aligner in this crate returns an [`AlignOutput`]: the scored
//! [`AlignResult`] plus an [`AlignStats`] record describing *how much
//! work* the dynamic program actually did. The stats drive the IPU
//! simulator's cycle-cost model, the `δ_b` selection experiment
//! (Figure 6 / §6.1), and the search-space figures (Figure 2).

/// Outcome of one semi-global extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlignResult {
    /// Best score found (`T` in Algorithm 1). Zero for an empty
    /// extension (aligning nothing is always allowed).
    pub best_score: i32,
    /// Number of `H` symbols consumed on the best-scoring path end.
    pub end_h: usize,
    /// Number of `V` symbols consumed on the best-scoring path end.
    pub end_v: usize,
}

impl AlignResult {
    /// The empty extension: score 0 at the origin.
    pub fn empty() -> Self {
        Self {
            best_score: 0,
            end_h: 0,
            end_v: 0,
        }
    }

    /// Antidiagonal index at which the best score was found.
    pub fn end_antidiagonal(&self) -> usize {
        self.end_h + self.end_v
    }
}

/// Work and memory accounting for one alignment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlignStats {
    /// DP cells actually evaluated (the gray area of Figure 2).
    pub cells_computed: u64,
    /// Antidiagonal sweeps performed (`k` at termination).
    pub antidiagonals: u64,
    /// Maximum live band width `δ_w = max_k (U_k − L_k + 1)` — the
    /// quantity Figure 6 measures and `δ_b` must dominate.
    pub delta_w: usize,
    /// Theoretical maximum antidiagonal length
    /// `δ = min(|H|, |V|) + 1`.
    pub delta: usize,
    /// Bytes of DP working memory the algorithm allocated
    /// (`3δ` × 4 B for the three-antidiagonal variant, `2δ_b` × 4 B
    /// for the memory-restricted one).
    pub work_bytes: usize,
    /// Number of cells pruned by the X-Drop condition.
    pub cells_dropped: u64,
    /// Number of candidate cells never evaluated because the
    /// [`crate::xdrop2::BandPolicy::Saturate`] policy clipped the
    /// band to `δ_b` (always zero for the other policies and
    /// algorithms).
    pub cells_clipped: u64,
}

impl AlignStats {
    /// Theoretical full-matrix cell count `|H| × |V|`, the numerator
    /// of the paper's GCUPS metric.
    pub fn theoretical_cells(h_len: usize, v_len: usize) -> u64 {
        h_len as u64 * v_len as u64
    }

    /// Fraction of the full matrix that was actually computed.
    pub fn computed_fraction(&self, h_len: usize, v_len: usize) -> f64 {
        let total = Self::theoretical_cells(h_len, v_len);
        if total == 0 {
            0.0
        } else {
            self.cells_computed as f64 / total as f64
        }
    }

    /// Memory saved relative to a `3δ` three-antidiagonal layout, as
    /// a factor (§6.1 reports up to 55×).
    pub fn memory_reduction_vs_3delta(&self) -> f64 {
        let three_delta = 3 * self.delta * 4;
        if self.work_bytes == 0 {
            0.0
        } else {
            three_delta as f64 / self.work_bytes as f64
        }
    }

    /// Merges another stats record into this one (used when combining
    /// left and right seed extensions).
    pub fn merge(&mut self, other: &AlignStats) {
        self.cells_computed += other.cells_computed;
        self.antidiagonals += other.antidiagonals;
        self.delta_w = self.delta_w.max(other.delta_w);
        self.delta = self.delta.max(other.delta);
        self.work_bytes = self.work_bytes.max(other.work_bytes);
        self.cells_dropped += other.cells_dropped;
        self.cells_clipped += other.cells_clipped;
    }
}

/// An [`AlignResult`] together with its [`AlignStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AlignOutput {
    /// The alignment outcome.
    pub result: AlignResult,
    /// Work/memory accounting.
    pub stats: AlignStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_result() {
        let r = AlignResult::empty();
        assert_eq!(r.best_score, 0);
        assert_eq!(r.end_antidiagonal(), 0);
    }

    #[test]
    fn theoretical_cells() {
        assert_eq!(AlignStats::theoretical_cells(10, 20), 200);
        assert_eq!(AlignStats::theoretical_cells(0, 20), 0);
    }

    #[test]
    fn computed_fraction() {
        let s = AlignStats {
            cells_computed: 50,
            ..Default::default()
        };
        assert!((s.computed_fraction(10, 10) - 0.5).abs() < 1e-12);
        assert_eq!(s.computed_fraction(0, 10), 0.0);
    }

    #[test]
    fn memory_reduction() {
        let s = AlignStats {
            delta: 1000,
            work_bytes: 2 * 100 * 4,
            ..Default::default()
        };
        // 3*1000*4 / (2*100*4) = 15×
        assert!((s.memory_reduction_vs_3delta() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines() {
        let mut a = AlignStats {
            cells_computed: 10,
            antidiagonals: 5,
            delta_w: 3,
            delta: 100,
            work_bytes: 800,
            cells_dropped: 2,
            cells_clipped: 0,
        };
        let b = AlignStats {
            cells_computed: 20,
            antidiagonals: 7,
            delta_w: 9,
            delta: 50,
            work_bytes: 400,
            cells_dropped: 1,
            cells_clipped: 4,
        };
        a.merge(&b);
        assert_eq!(a.cells_computed, 30);
        assert_eq!(a.antidiagonals, 12);
        assert_eq!(a.delta_w, 9);
        assert_eq!(a.delta, 100);
        assert_eq!(a.work_bytes, 800);
        assert_eq!(a.cells_dropped, 3);
        assert_eq!(a.cells_clipped, 4);
    }
}
