//! The memory-restricted two-antidiagonal X-Drop — **Algorithm 1 of
//! the paper**.
//!
//! Two observations shrink the classical `3δ` working set:
//!
//! 1. *Two antidiagonals suffice* (Gotoh 1982): the values of
//!    antidiagonal `d − 2` are consumed exactly one index behind the
//!    writes of antidiagonal `d`, so `d` can be written **in place**
//!    over `d − 2` with a single one-cell temporary (`w_last` in the
//!    paper's listing, `saved` here).
//! 2. *Only the live band needs storage*: although an antidiagonal
//!    can span `δ = min(|H|, |V|) + 1` cells, the X-Drop condition
//!    keeps only `|U_k − L_k| + 1 ≤ δ_w` of them alive, and on real
//!    long-read data `δ_w ≪ δ` (98.2 % smaller for E. coli at
//!    X = 15, §6.1). The buffers are therefore allocated at a bound
//!    `δ_b` and *re-based* every sweep so that slot 0 always maps to
//!    the current lower bound `L_k` — the paper's `L1_inc`/`L2_inc`
//!    offset bookkeeping, expressed here as a per-diagonal base
//!    index.
//!
//! Total working memory: `2 δ_b` cells, which is what lets six
//! concurrent alignments of 10 kbp+ reads fit in a 624 KB IPU tile.
//!
//! What happens if the band outgrows `δ_b` is a policy decision
//! ([`BandPolicy`]): fail, grow, or clip the band around the current
//! best cell (the "dynamic band constantly realigned to the active
//! iteration position", §3).

use crate::error::{AlignError, Result};
use crate::scorety::ScoreTy;
use crate::scoring::Scorer;
use crate::seqview::{Fwd, SeqView};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::XDropParams;

/// What to do when the live band outgrows `δ_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BandPolicy {
    /// Fail with [`AlignError::BandExceeded`]. This is the faithful
    /// IPU-tile behaviour: the buffers are statically sized and the
    /// host must resubmit with a larger `δ_b`.
    Exact(usize),
    /// Double the buffers (at least to the required width) and keep
    /// going. Convenient on hosts with plenty of memory; the reported
    /// `work_bytes` reflect the final allocation.
    Grow(usize),
    /// Keep `δ_b` fixed and evaluate only the `δ_b` candidate cells
    /// nearest the previous antidiagonal's best cell, clipping the
    /// rest. The result may differ from exact X-Drop (scores can only
    /// be lost, never invented); clipped cells are counted in
    /// [`AlignStats::cells_clipped`].
    Saturate(usize),
}

impl BandPolicy {
    /// The configured band bound `δ_b`.
    #[inline(always)]
    pub fn delta_b(self) -> usize {
        match self {
            BandPolicy::Exact(b) | BandPolicy::Grow(b) | BandPolicy::Saturate(b) => b,
        }
    }
}

/// Reusable band buffers for [`align_with_workspace`].
///
/// `bufs` are the two antidiagonal buffers of Algorithm 1; `scratch`
/// is a third, host-side staging buffer used only by the
/// lane-parallel kernels ([`crate::kernel`]) to snapshot the `d − 2`
/// segment before the in-place overwrite. It is *not* part of the
/// modeled `2 δ_b` working set ([`AlignStats::work_bytes`]), which
/// describes the device kernel's footprint.
#[derive(Debug, Default)]
pub struct Workspace<T: ScoreTy> {
    pub(crate) bufs: [Vec<T>; 2],
    pub(crate) scratch: Vec<T>,
}

impl<T: ScoreTy> Workspace<T> {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self {
            bufs: [Vec::new(), Vec::new()],
            scratch: Vec::new(),
        }
    }

    /// Grows every buffer to at least `cap` cells.
    ///
    /// Already-sized workspaces take the early return and never touch
    /// the vectors — `ensure` sits on the per-alignment hot path and
    /// batches reuse one workspace across thousands of calls. The
    /// fast path deliberately checks the scratch buffer *and* the
    /// band capacity: a workspace that last served a wide alignment
    /// may satisfy `capacity() >= cap` while a desynchronized scratch
    /// is still sized for a narrower one, and the lane-parallel
    /// staging (`stage_diag2`) writes `scratch[..width]` with `width`
    /// bounded only by `capacity()` under [`BandPolicy::Grow`].
    #[inline(always)]
    pub(crate) fn ensure(&mut self, cap: usize) {
        if self.capacity() >= cap && self.scratch.len() >= cap {
            return;
        }
        self.grow_to(cap);
    }

    #[cold]
    fn grow_to(&mut self, cap: usize) {
        // Lockstep growth: all three buffers settle at one common
        // length, restoring the invariant `scratch.len() >=
        // capacity()` even if a caller (or an earlier partial resize)
        // desynchronized them. Growing only the lagging buffers to
        // `cap` would leave a larger band buffer un-mirrored by
        // scratch, which the next `ensure` fast path would then
        // accept — the stale-capacity surface the cross-batch
        // regression tests pin down.
        let cap = cap
            .max(self.bufs[0].len())
            .max(self.bufs[1].len())
            .max(self.scratch.len());
        for b in &mut self.bufs {
            if b.len() < cap {
                b.resize(cap, T::neg_inf());
            }
        }
        if self.scratch.len() < cap {
            self.scratch.resize(cap, T::neg_inf());
        }
    }

    /// Usable band capacity: the size of the smaller antidiagonal
    /// buffer (the scratch buffer is excluded — it mirrors them).
    #[inline(always)]
    pub(crate) fn capacity(&self) -> usize {
        self.bufs[0].len().min(self.bufs[1].len())
    }

    /// Truncates all buffers to length zero (capacity is kept).
    ///
    /// Calling this between alignments is **never required for
    /// correctness**: every read of a band slot is guarded by the
    /// `DiagMeta` candidate interval of the antidiagonal that last
    /// wrote it *in the current call* (`contains(i)`), and the metas
    /// restart from the origin/`EMPTY` state on every call — so cells
    /// left over from a previous, larger alignment are unreachable,
    /// not merely ignored. The guard is what
    /// `workspace_reuse_is_clean` and the cross-size regression tests
    /// pin down. `reset_len` exists for diagnostics: after it, the
    /// next `ensure` re-fills every cell with `-∞`, so a kernel that
    /// *did* depend on stale contents would fail loudly.
    pub fn reset_len(&mut self) {
        for b in &mut self.bufs {
            b.clear();
        }
        self.scratch.clear();
    }
}

/// Candidate interval of a stored antidiagonal; slot `0` of its
/// buffer corresponds to `i = base` (`base == cand_lo`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct DiagMeta {
    pub(crate) cand_lo: usize,
    pub(crate) cand_hi: usize,
}

impl DiagMeta {
    pub(crate) const EMPTY: DiagMeta = DiagMeta {
        cand_lo: 1,
        cand_hi: 0,
    };

    #[inline(always)]
    pub(crate) fn contains(&self, i: usize) -> bool {
        i >= self.cand_lo && i <= self.cand_hi
    }
}

/// Memory-restricted X-Drop extension with `i32` scores and forward
/// sequence access.
///
/// Runs the lane-parallel kernel selected by `params.kernel`
/// (bit-identical to the scalar reference; see [`crate::kernel`]).
pub fn align<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> Result<AlignOutput> {
    let mut ws = Workspace::<i32>::new();
    crate::kernel::align_views(
        params.kernel,
        &Fwd(h),
        &Fwd(v),
        scorer,
        params,
        policy,
        &mut ws,
    )
}

/// [`align`] reusing a caller-provided workspace across calls.
pub fn align_with_workspace<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    ws: &mut Workspace<i32>,
) -> Result<AlignOutput> {
    crate::kernel::align_views(params.kernel, &Fwd(h), &Fwd(v), scorer, params, policy, ws)
}

/// [`align`] with `f32` score cells (the dual-issue variant, §4.1.4).
pub fn align_f32<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
) -> Result<AlignOutput> {
    let mut ws = Workspace::<f32>::new();
    crate::kernel::align_views(
        params.kernel,
        &Fwd(h),
        &Fwd(v),
        scorer,
        params,
        policy,
        &mut ws,
    )
}

/// The two-antidiagonal kernel: generic over score cell type and
/// sequence direction (Algorithm 1 with the `op(·)` transform).
/// **This scalar implementation is the reference** every kernel in
/// [`crate::kernel`] is pinned bit-identical to.
pub fn align_views_ty<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    params: XDropParams,
    policy: BandPolicy,
    ws: &mut Workspace<T>,
) -> Result<AlignOutput> {
    let (m, n) = (h.len(), v.len());
    let delta = m.min(n) + 1;
    let delta_b = policy.delta_b();
    if delta_b == 0 {
        return Err(AlignError::InvalidConfig("δ_b must be nonzero"));
    }
    ws.ensure(delta_b);
    let gap = scorer.gap();
    let x = params.x;

    // bufs[d % 2] holds antidiagonal d; metas[] mirror that.
    let mut metas = [
        DiagMeta {
            cand_lo: 0,
            cand_hi: 0,
        },
        DiagMeta::EMPTY,
    ];
    ws.bufs[0][0] = T::from_i32(0);
    // Degenerate-but-valid: the buffer at index 1 has never been
    // written; its meta is EMPTY so it is never read.

    let mut best = AlignResult::empty();
    let mut t_best = 0i32;
    let (mut live_lo, mut live_hi) = (0usize, 0usize);
    // i-index of the best live cell on the previous antidiagonal;
    // Saturate clips the band around it.
    let mut prev_best_i = 0usize;
    // Exact/Saturate enforce the logical bound δ_b even if a reused
    // workspace happens to own larger buffers; Grow uses whatever is
    // allocated.
    let band_cap = |ws: &Workspace<T>| match policy {
        BandPolicy::Exact(b) | BandPolicy::Saturate(b) => b,
        BandPolicy::Grow(_) => ws.capacity(),
    };
    let mut stats = AlignStats {
        cells_computed: 1,
        delta_w: 1,
        delta,
        work_bytes: 2 * band_cap(ws) * std::mem::size_of::<T>(),
        ..Default::default()
    };

    for d in 1..=(m + n) {
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        let geo_lo = d.saturating_sub(m);
        let geo_hi = d.min(n);
        let mut cand_lo = live_lo.max(geo_lo);
        let mut cand_hi = (live_hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            break;
        }
        let width = cand_hi - cand_lo + 1;
        if width > band_cap(ws) {
            match policy {
                BandPolicy::Exact(delta_b) => {
                    return Err(AlignError::BandExceeded {
                        needed: width,
                        delta_b,
                        antidiagonal: d,
                    });
                }
                BandPolicy::Grow(_) => {
                    let new_cap = width.max(2 * ws.capacity());
                    ws.ensure(new_cap);
                    stats.work_bytes = 2 * band_cap(ws) * std::mem::size_of::<T>();
                }
                BandPolicy::Saturate(delta_b) => {
                    // Clip to the δ_b candidates nearest the previous
                    // best cell (band re-centered every iteration).
                    let half = delta_b / 2;
                    let lo_min = cand_lo;
                    let lo_max = cand_hi + 1 - delta_b;
                    let lo = prev_best_i.saturating_sub(half).clamp(lo_min, lo_max);
                    stats.cells_clipped += (width - delta_b) as u64;
                    cand_lo = lo;
                    cand_hi = lo + delta_b - 1;
                }
            }
        }

        let cur_idx = d % 2;
        let prev_idx = 1 - cur_idx;
        let meta_prev2 = metas[cur_idx]; // antidiagonal d − 2 (same buffer)
        let meta_prev = metas[prev_idx]; // antidiagonal d − 1
                                         // Slot re-basing offset between d and d − 2 (the paper's
                                         // L1_inc + L2_inc combination). Monotone band bounds
                                         // guarantee cand_lo ≥ meta_prev2.cand_lo.
        let shift = cand_lo - meta_prev2.cand_lo.min(cand_lo);
        let in_place = shift == 0;

        let mut t_new = t_best;
        let mut any_live = false;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        let mut new_best_i = prev_best_i;
        let mut best_on_diag = i32::MIN;
        // `saved` carries the pre-overwrite value of the slot written
        // in the previous inner-loop step — the paper's w_last.
        let mut saved = T::neg_inf();

        for i in cand_lo..=cand_hi {
            let w = i - cand_lo;
            // Split borrows: cur and prev are different array elements.
            let diag_old = if i >= 1 && meta_prev2.contains(i - 1) {
                if in_place {
                    saved
                } else {
                    ws.bufs[cur_idx][(i - 1) - meta_prev2.cand_lo]
                }
            } else {
                T::neg_inf()
            };
            let diag = if diag_old.is_dropped() {
                T::neg_inf()
            } else {
                // contains(i−1) implies j ≥ 1 on antidiagonal d.
                let j = d - i;
                diag_old.add_i32(scorer.sim(v.at(i - 1), h.at(j - 1)))
            };
            let left = if meta_prev.contains(i) {
                ws.bufs[prev_idx][i - meta_prev.cand_lo].add_i32(gap)
            } else {
                T::neg_inf()
            };
            let up = if i >= 1 && meta_prev.contains(i - 1) {
                ws.bufs[prev_idx][(i - 1) - meta_prev.cand_lo].add_i32(gap)
            } else {
                T::neg_inf()
            };
            let mut score = diag.maxv(left).maxv(up);
            stats.cells_computed += 1;
            if !score.is_dropped() && score.to_i32() < t_best - x {
                score = T::neg_inf();
                stats.cells_dropped += 1;
            }
            saved = ws.bufs[cur_idx][w];
            ws.bufs[cur_idx][w] = score;
            if !score.is_dropped() {
                any_live = true;
                new_lo = new_lo.min(i);
                new_hi = new_hi.max(i);
                let s = score.to_i32();
                t_new = t_new.max(s);
                if s > best_on_diag {
                    best_on_diag = s;
                    new_best_i = i;
                }
                if s > best.best_score {
                    best = AlignResult {
                        best_score: s,
                        end_h: d - i,
                        end_v: i,
                    };
                }
            }
        }
        stats.antidiagonals += 1;
        metas[cur_idx] = DiagMeta { cand_lo, cand_hi };
        if !any_live {
            break;
        }
        live_lo = new_lo;
        live_hi = new_hi;
        prev_best_i = new_best_i;
        stats.delta_w = stats.delta_w.max(live_hi - live_lo + 1);
        t_best = t_new;
    }
    Ok(AlignOutput {
        result: best,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::scoring::MatchMismatch;
    use crate::seqview::Rev;
    use crate::xdrop3;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    fn assert_matches_xdrop3(h: &[u8], v: &[u8], x: i32, delta_b: usize) {
        let p = XDropParams::new(x);
        let a = xdrop3::align(h, v, &sc(), p);
        let b = align(h, v, &sc(), p, BandPolicy::Grow(delta_b)).unwrap();
        assert_eq!(a.result, b.result, "result mismatch x={x} δ_b={delta_b}");
        assert_eq!(a.stats.cells_computed, b.stats.cells_computed);
        assert_eq!(a.stats.antidiagonals, b.stats.antidiagonals);
        assert_eq!(a.stats.delta_w, b.stats.delta_w);
        assert_eq!(a.stats.cells_dropped, b.stats.cells_dropped);
    }

    #[test]
    fn matches_xdrop3_on_fixed_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGT", b"ACGTACGT"),
            (b"ACGTACGTACGT", b"ACGAACGTTCGT"),
            (b"AAAAAAAAAA", b"TTTTTTTTTT"),
            (b"ACGT", b"ACGTACGTACGTACGT"),
            (b"ACGTACGTACGTACGT", b"ACGT"),
            (b"ACGTAACGTACGT", b"ACGTACGTACGT"),
            (b"ACGTACGTACGT", b"ACGTAACGTACGT"),
            (b"A", b"A"),
            (b"A", b"C"),
            (
                b"ACGTACGTACGTACGTACGTACGTACGTACGT",
                b"ACGAACGTACGTACTTACGTACGAACGTACGT",
            ),
        ];
        for (h, v) in cases {
            let h = encode_dna(h);
            let v = encode_dna(v);
            for x in [0, 1, 2, 5, 20, 1000] {
                for delta_b in [1, 2, 4, 64] {
                    assert_matches_xdrop3(&h, &v, x, delta_b);
                }
            }
        }
    }

    #[test]
    fn exact_policy_fails_when_band_too_small() {
        // With a huge X the band spans the whole matrix; δ_b = 2 must
        // overflow.
        let s = encode_dna(b"ACGTACGTACGTACGT");
        let err = align(
            &s,
            &s,
            &sc(),
            XDropParams::new(10_000),
            BandPolicy::Exact(2),
        )
        .unwrap_err();
        match err {
            AlignError::BandExceeded {
                needed, delta_b, ..
            } => {
                assert!(needed > 2);
                assert_eq!(delta_b, 2);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn exact_policy_succeeds_when_delta_b_ge_delta_w() {
        let h = encode_dna(b"ACGTACGTACGTACGTACGTACGT");
        let v = encode_dna(b"ACGTACGAACGTACGTACTTACGT");
        let p = XDropParams::new(8);
        let probe = align(&h, &v, &sc(), p, BandPolicy::Grow(4)).unwrap();
        // Candidate width can exceed the live width δ_w by 1 (the
        // U + 1 expansion slot).
        let needed = probe.stats.delta_w + 1;
        let exact = align(&h, &v, &sc(), p, BandPolicy::Exact(needed)).unwrap();
        assert_eq!(exact.result, probe.result);
    }

    #[test]
    fn grow_policy_reports_final_allocation() {
        let s = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let out = align(&s, &s, &sc(), XDropParams::new(10_000), BandPolicy::Grow(1)).unwrap();
        assert!(out.stats.work_bytes >= 2 * out.stats.delta_w * 4 - 8);
    }

    #[test]
    fn saturate_policy_never_overreports() {
        let h = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT");
        let v = encode_dna(b"ACGAACGTACGTACTTACGTACGAACGTACGTTCGTACGA");
        let p = XDropParams::new(50);
        let exact = xdrop3::align(&h, &v, &sc(), p);
        for delta_b in [2, 3, 5, 9, 17] {
            let sat = align(&h, &v, &sc(), p, BandPolicy::Saturate(delta_b)).unwrap();
            assert!(
                sat.result.best_score <= exact.result.best_score,
                "saturate must not invent score (δ_b={delta_b})"
            );
        }
        // A generous δ_b loses nothing.
        let sat = align(&h, &v, &sc(), p, BandPolicy::Saturate(64)).unwrap();
        assert_eq!(sat.result, exact.result);
        assert_eq!(sat.stats.cells_clipped, 0);
    }

    #[test]
    fn saturate_counts_clipped_cells() {
        let s = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let out = align(
            &s,
            &s,
            &sc(),
            XDropParams::new(10_000),
            BandPolicy::Saturate(3),
        )
        .unwrap();
        assert!(out.stats.cells_clipped > 0);
    }

    #[test]
    fn zero_delta_b_rejected() {
        let s = encode_dna(b"ACGT");
        let err = align(&s, &s, &sc(), XDropParams::new(5), BandPolicy::Exact(0)).unwrap_err();
        assert_eq!(err, AlignError::InvalidConfig("δ_b must be nonzero"));
    }

    #[test]
    fn memory_is_two_delta_b() {
        let h = encode_dna(b"ACGTACGTACGTACGTACGT");
        let v = encode_dna(b"ACGTACGTACGTACGTACGA");
        let out = align(&h, &v, &sc(), XDropParams::new(5), BandPolicy::Exact(16)).unwrap();
        assert_eq!(out.stats.work_bytes, 2 * 16 * 4);
        // The whole point: far less than the 3δ of xdrop3.
        let three = xdrop3::align(&h, &v, &sc(), XDropParams::new(5));
        assert!(out.stats.work_bytes < three.stats.work_bytes);
    }

    #[test]
    fn f32_matches_i32() {
        let h = encode_dna(b"ACGTACGTACGTAAGGTACGTACGTTTTACGT");
        let v = encode_dna(b"ACGTACGAACGTAAGGTACGTACTTTTTACGA");
        for x in [1, 3, 10, 100] {
            let a = align(&h, &v, &sc(), XDropParams::new(x), BandPolicy::Grow(8)).unwrap();
            let b = align_f32(&h, &v, &sc(), XDropParams::new(x), BandPolicy::Grow(8)).unwrap();
            assert_eq!(a.result, b.result);
            assert_eq!(a.stats.cells_computed, b.stats.cells_computed);
        }
    }

    #[test]
    fn reverse_views_equal_reversed_copies() {
        let h = encode_dna(b"ACGTTACGGTACGTACAA");
        let v = encode_dna(b"ACGTTACGTACGTACAAG");
        let hr: Vec<u8> = h.iter().rev().copied().collect();
        let vr: Vec<u8> = v.iter().rev().copied().collect();
        let mut ws = Workspace::<i32>::new();
        let p = XDropParams::new(4);
        let via_view =
            align_views_ty(&Rev(&h), &Rev(&v), &sc(), p, BandPolicy::Grow(8), &mut ws).unwrap();
        let via_copy = align(&hr, &vr, &sc(), p, BandPolicy::Grow(8)).unwrap();
        assert_eq!(via_view.result, via_copy.result);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let mut ws = Workspace::<i32>::new();
        let long = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let p = XDropParams::new(100);
        let _ = align_with_workspace(&long, &long, &sc(), p, BandPolicy::Grow(4), &mut ws);
        let h = encode_dna(b"ACGT");
        let v = encode_dna(b"ACCT");
        let fresh = align(&h, &v, &sc(), p, BandPolicy::Grow(4)).unwrap();
        let reused = align_with_workspace(&h, &v, &sc(), p, BandPolicy::Grow(4), &mut ws).unwrap();
        assert_eq!(fresh.result, reused.result);
        assert_eq!(fresh.stats.cells_computed, reused.stats.cells_computed);
    }

    /// Regression: one workspace reused back-to-back across
    /// alignments of very different sizes and across all three band
    /// policies must never read stale cells from an earlier, larger
    /// call — the meta-guard invariant documented on
    /// [`Workspace::reset_len`].
    #[test]
    fn workspace_reuse_across_sizes_and_policies() {
        let big = encode_dna(&b"ACGTACGTGGATCCAT".repeat(24)); // 384 bp
        let mid = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let tiny = encode_dna(b"ACGT");
        let seqs: [&[u8]; 5] = [&big, &tiny, &mid, &tiny, &big];
        let policies = [
            BandPolicy::Grow(4),
            BandPolicy::Saturate(8),
            BandPolicy::Grow(64),
            BandPolicy::Exact(512),
            BandPolicy::Saturate(3),
        ];
        let mut ws = Workspace::<i32>::new();
        // Dirty the workspace with a large, band-heavy alignment.
        let _ = align_with_workspace(
            &big,
            &big,
            &sc(),
            XDropParams::unbounded(),
            BandPolicy::Grow(4),
            &mut ws,
        );
        for x in [2, 25, 10_000] {
            let p = XDropParams::new(x);
            for (s, policy) in seqs.iter().zip(policies) {
                let mut h = s.to_vec();
                if let Some(c) = h.first_mut() {
                    *c = (*c + 1) % 4;
                }
                let fresh = align(&h, s, &sc(), p, policy).unwrap();
                let reused = align_with_workspace(&h, s, &sc(), p, policy, &mut ws).unwrap();
                assert_eq!(fresh.result, reused.result, "policy {policy:?} x={x}");
                // Under Grow the modeled footprint reflects the
                // workspace's current capacity, so a pre-grown reused
                // workspace legitimately reports more work_bytes;
                // every other field must match exactly.
                let mut reused_stats = reused.stats;
                if matches!(policy, BandPolicy::Grow(_)) {
                    assert!(reused_stats.work_bytes >= fresh.stats.work_bytes);
                    reused_stats.work_bytes = fresh.stats.work_bytes;
                }
                assert_eq!(fresh.stats, reused_stats, "policy {policy:?} x={x}");
            }
        }
        // reset_len is allowed but never required: results unchanged.
        ws.reset_len();
        assert_eq!(ws.capacity(), 0);
        let p = XDropParams::new(25);
        let after = align_with_workspace(&mid, &mid, &sc(), p, BandPolicy::Grow(4), &mut ws);
        let fresh = align(&mid, &mid, &sc(), p, BandPolicy::Grow(4));
        assert_eq!(after.unwrap().result, fresh.unwrap().result);
    }

    #[test]
    fn ensure_skips_resize_when_already_sized() {
        let mut ws = Workspace::<i32>::new();
        ws.ensure(64);
        assert_eq!(ws.capacity(), 64);
        let ptrs = [ws.bufs[0].as_ptr(), ws.bufs[1].as_ptr()];
        ws.ensure(16); // smaller: must be a no-op
        ws.ensure(64); // equal: must be a no-op
        assert_eq!([ws.bufs[0].as_ptr(), ws.bufs[1].as_ptr()], ptrs);
        ws.ensure(65); // larger: must grow all buffers in lockstep
        assert!(ws.capacity() >= 65);
        assert!(ws.scratch.len() >= 65);
    }

    /// Regression for the stale-capacity surface: a workspace whose
    /// buffers were desynchronized (here by hand; historically by a
    /// partial resize) must come out of the next `ensure` with the
    /// `scratch.len() >= capacity()` invariant restored, because the
    /// lane-parallel staging sizes its scratch writes by `capacity()`
    /// under `Grow`, not by the `ensure` argument.
    #[test]
    fn ensure_restores_lockstep_after_desync() {
        let mut ws = Workspace::<i32>::new();
        ws.ensure(16);
        // Desynchronize: one band buffer races ahead of scratch.
        ws.bufs[0].resize(128, crate::NEG_INF);
        assert!(ws.scratch.len() < ws.bufs[0].len());
        ws.ensure(32);
        assert!(ws.scratch.len() >= ws.capacity());
        assert_eq!(ws.capacity(), 128, "lockstep settles on the maximum");
        assert_eq!(ws.scratch.len(), 128);
        // And the other direction: an oversized scratch drags the
        // band buffers up rather than shadowing a too-small band.
        let mut ws = Workspace::<i32>::new();
        ws.ensure(8);
        ws.scratch.resize(64, crate::NEG_INF);
        ws.ensure(9);
        assert_eq!(ws.capacity(), 64);
        assert!(ws.scratch.len() >= ws.capacity());
    }

    /// Regression for scratch reuse across batches of differing
    /// maximum length: one workspace serving interleaved long and
    /// short alignments through the lane-parallel kernel (which
    /// stages into scratch every sweep) must stay bit-identical to
    /// fresh-workspace runs, and the lockstep invariant must hold
    /// after every call.
    #[test]
    fn workspace_reuse_across_batches_of_differing_max_length() {
        let long = encode_dna(&b"ACGTACGTGGATCCAT".repeat(32)); // 512 bp
        let short = encode_dna(b"ACGTACGTACGTACGT");
        let mut ws = Workspace::<i32>::new();
        // Batch lengths alternate between extremes, as when a length
        // bucketed batch of long comparisons is followed by a batch
        // of short ones.
        for round in 0..3 {
            for s in [&long, &short, &long[..33].to_vec(), &short] {
                let mut h = s.clone();
                h[0] = (h[0] + 1) % 4;
                for policy in [
                    BandPolicy::Grow(2),
                    BandPolicy::Saturate(7),
                    BandPolicy::Exact(1024),
                ] {
                    let p = XDropParams::new(30).with_kernel(crate::kernel::KernelKind::Simd);
                    let reused = crate::kernel::align_views(
                        p.kernel,
                        &Fwd(&h),
                        &Fwd(s),
                        &sc(),
                        p,
                        policy,
                        &mut ws,
                    )
                    .unwrap();
                    let mut fresh_ws = Workspace::<i32>::new();
                    let fresh = crate::kernel::align_views(
                        p.kernel,
                        &Fwd(&h),
                        &Fwd(s),
                        &sc(),
                        p,
                        policy,
                        &mut fresh_ws,
                    )
                    .unwrap();
                    assert_eq!(
                        fresh.result, reused.result,
                        "round {round} policy {policy:?}"
                    );
                    let mut reused_stats = reused.stats;
                    if matches!(policy, BandPolicy::Grow(_)) {
                        assert!(reused_stats.work_bytes >= fresh.stats.work_bytes);
                        reused_stats.work_bytes = fresh.stats.work_bytes;
                    }
                    assert_eq!(fresh.stats, reused_stats, "round {round} policy {policy:?}");
                    assert!(
                        ws.scratch.len() >= ws.capacity(),
                        "lockstep invariant after round {round} policy {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let s = encode_dna(b"ACGT");
        let out = align(&s, &[], &sc(), XDropParams::new(5), BandPolicy::Exact(4)).unwrap();
        assert_eq!(out.result, AlignResult::empty());
        let out = align(&[], &[], &sc(), XDropParams::new(5), BandPolicy::Exact(1)).unwrap();
        assert_eq!(out.result, AlignResult::empty());
    }
}
