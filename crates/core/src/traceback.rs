//! X-Drop alignment with traceback.
//!
//! The IPU kernel (and LOGAN) return only scores and end positions —
//! storing the path needs memory proportional to the *computed
//! region*, which is exactly what a 624 KB tile cannot afford. But
//! downstream consumers (polishing, variant calling, visual
//! inspection) often need the alignment itself, so this host-side
//! variant keeps a 2-bit direction for every computed cell
//! (`O(cells / 4)` bytes — still far less than the full matrix,
//! thanks to the X-Drop band) and reconstructs the path.
//!
//! The DP is the same Zhang antidiagonal X-Drop as
//! [`crate::xdrop3`]; results are differentially tested to agree
//! with it cell for cell.

use crate::reference::{AlignOp, Alignment};
use crate::scoring::Scorer;
use crate::seqview::{Fwd, SeqView};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::{is_dropped, XDropParams, NEG_INF};

/// Per-cell traceback direction, packed two bits each.
const DIR_STOP: u8 = 0;
const DIR_DIAG: u8 = 1;
const DIR_LEFT: u8 = 2; // consumed one H symbol (gap in V)
const DIR_UP: u8 = 3; // consumed one V symbol (gap in H)

/// One stored antidiagonal: candidate interval plus packed
/// directions.
struct DiagRow {
    lo: usize,
    /// 2-bit directions for `i ∈ [lo, hi]`, LSB-first.
    dirs: Vec<u8>,
    len: usize,
}

impl DiagRow {
    fn new(lo: usize, len: usize) -> Self {
        Self {
            lo,
            dirs: vec![0u8; len.div_ceil(4)],
            len,
        }
    }

    #[inline]
    fn set(&mut self, i: usize, dir: u8) {
        let s = i - self.lo;
        debug_assert!(s < self.len);
        self.dirs[s / 4] |= dir << ((s % 4) * 2);
    }

    #[inline]
    fn get(&self, i: usize) -> u8 {
        if i < self.lo || i >= self.lo + self.len {
            return DIR_STOP;
        }
        let s = i - self.lo;
        (self.dirs[s / 4] >> ((s % 4) * 2)) & 0b11
    }
}

/// X-Drop semi-global extension returning both the usual output and
/// the best-scoring path as an [`Alignment`].
///
/// # Example
///
/// ```
/// use xdrop_core::traceback::xdrop_align_with_traceback;
/// use xdrop_core::scoring::MatchMismatch;
/// use xdrop_core::alphabet::encode_dna;
/// use xdrop_core::XDropParams;
///
/// let h = encode_dna(b"ACGTACGTACGT");
/// let (out, aln) = xdrop_align_with_traceback(&h, &h, &MatchMismatch::dna_default(),
///     XDropParams::new(10));
/// assert_eq!(out.result.best_score, 12);
/// assert_eq!(aln.cigar(), "12M");
/// ```
pub fn xdrop_align_with_traceback<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
) -> (AlignOutput, Alignment) {
    xdrop_traceback_views(&Fwd(h), &Fwd(v), scorer, params)
}

/// [`xdrop_align_with_traceback`] over directional views.
pub fn xdrop_traceback_views<S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    params: XDropParams,
) -> (AlignOutput, Alignment) {
    let (m, n) = (h.len(), v.len());
    let gap = scorer.gap();
    let x = params.x;
    let delta = m.min(n) + 1;

    // Rolling score buffers (indexed by i − geo_lo like xdrop3) plus
    // the retained per-diagonal direction rows.
    let mut prev2 = vec![NEG_INF; delta + 2];
    let mut prev = vec![NEG_INF; delta + 2];
    let mut cur = vec![NEG_INF; delta + 2];
    prev[0] = 0;
    let mut meta_prev: (usize, usize, usize) = (0, 0, 0); // (cand_lo, cand_hi, geo_lo)
    let mut meta_prev2: (usize, usize, usize) = (1, 0, 0); // empty

    let mut rows: Vec<DiagRow> = Vec::new();
    let mut best = AlignResult::empty();
    let mut t_best = 0i32;
    let (mut live_lo, mut live_hi) = (0usize, 0usize);
    let mut stats = AlignStats {
        cells_computed: 1,
        delta_w: 1,
        delta,
        work_bytes: 3 * (delta + 2) * 4,
        ..Default::default()
    };

    let get = |buf: &[i32], meta: (usize, usize, usize), i: usize| -> i32 {
        if i >= meta.0 && i <= meta.1 {
            buf[i - meta.2]
        } else {
            NEG_INF
        }
    };

    for d in 1..=(m + n) {
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        let geo_lo = d.saturating_sub(m);
        let geo_hi = d.min(n);
        let cand_lo = live_lo.max(geo_lo);
        let cand_hi = (live_hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            break;
        }
        let mut row = DiagRow::new(cand_lo, cand_hi - cand_lo + 1);
        let mut t_new = t_best;
        let mut any = false;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        for i in cand_lo..=cand_hi {
            let j = d - i;
            let diag = if i >= 1 && j >= 1 {
                let p = get(&prev2, meta_prev2, i - 1);
                if is_dropped(p) {
                    NEG_INF
                } else {
                    p + scorer.sim(v.at(i - 1), h.at(j - 1))
                }
            } else {
                NEG_INF
            };
            let left = get(&prev, meta_prev, i).saturating_add(gap);
            let up = if i >= 1 {
                get(&prev, meta_prev, i - 1).saturating_add(gap)
            } else {
                NEG_INF
            };
            let (mut score, dir) = if diag >= left && diag >= up {
                (diag, DIR_DIAG)
            } else if left >= up {
                (left, DIR_LEFT)
            } else {
                (up, DIR_UP)
            };
            stats.cells_computed += 1;
            if !is_dropped(score) && score < t_best - x {
                score = NEG_INF;
                stats.cells_dropped += 1;
            }
            cur[i - geo_lo] = score;
            if !is_dropped(score) {
                row.set(i, dir);
                any = true;
                new_lo = new_lo.min(i);
                new_hi = new_hi.max(i);
                t_new = t_new.max(score);
                if score > best.best_score {
                    best = AlignResult {
                        best_score: score,
                        end_h: j,
                        end_v: i,
                    };
                }
            }
        }
        rows.push(row);
        stats.antidiagonals += 1;
        if !any {
            break;
        }
        live_lo = new_lo;
        live_hi = new_hi;
        stats.delta_w = stats.delta_w.max(live_hi - live_lo + 1);
        t_best = t_new;
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
        meta_prev2 = meta_prev;
        meta_prev = (cand_lo, cand_hi, geo_lo);
    }

    // Traceback from the best cell. rows[d − 1] holds antidiagonal d.
    let mut ops = Vec::new();
    let (mut i, mut j) = (best.end_v, best.end_h);
    while i + j > 0 {
        let d = i + j;
        let dir = if d >= 1 && d - 1 < rows.len() {
            rows[d - 1].get(i)
        } else {
            DIR_STOP
        };
        match dir {
            DIR_DIAG => {
                ops.push(AlignOp::Subst);
                i -= 1;
                j -= 1;
            }
            DIR_LEFT => {
                ops.push(AlignOp::InsertH);
                j -= 1;
            }
            DIR_UP => {
                ops.push(AlignOp::InsertV);
                i -= 1;
            }
            _ => break, // reached the origin's frontier
        }
    }
    ops.reverse();
    // Account the retained traceback memory.
    stats.work_bytes += rows.iter().map(|r| r.dirs.len()).sum::<usize>();
    let alignment = Alignment {
        score: best.best_score,
        ops,
        start: (0, 0),
        end: (best.end_h, best.end_v),
    };
    (
        AlignOutput {
            result: best,
            stats,
        },
        alignment,
    )
}

/// Recomputes an alignment's score from its operations — used to
/// verify tracebacks independently of the DP.
pub fn score_of_path<S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    alignment: &Alignment,
) -> i32 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut score = 0i32;
    for op in &alignment.ops {
        match op {
            AlignOp::Subst => {
                score += scorer.sim(v.at(i), h.at(j));
                i += 1;
                j += 1;
            }
            AlignOp::InsertH => {
                score += scorer.gap();
                j += 1;
            }
            AlignOp::InsertV => {
                score += scorer.gap();
                i += 1;
            }
        }
    }
    debug_assert_eq!((j, i), alignment.end);
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::scoring::MatchMismatch;
    use crate::xdrop3;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    #[test]
    fn identical_sequences_all_matches() {
        let s = encode_dna(b"ACGTACGTACGTACGT");
        let (out, aln) = xdrop_align_with_traceback(&s, &s, &sc(), XDropParams::new(10));
        assert_eq!(out.result.best_score, 16);
        assert_eq!(aln.cigar(), "16M");
        assert_eq!(score_of_path(&Fwd(&s), &Fwd(&s), &sc(), &aln), 16);
    }

    #[test]
    fn single_insertion_yields_gap_op() {
        let h = encode_dna(b"ACGTTGCACAGTCCATGGAT");
        let v: Vec<u8> = [&h[..10], &[2u8][..], &h[10..]].concat(); // insert G
        let (out, aln) = xdrop_align_with_traceback(&h, &v, &sc(), XDropParams::new(10));
        assert_eq!(out.result.best_score, 20 - 1);
        assert_eq!(aln.gaps(), 1);
        assert_eq!(
            score_of_path(&Fwd(&h), &Fwd(&v), &sc(), &aln),
            out.result.best_score
        );
    }

    #[test]
    fn agrees_with_xdrop3_and_path_scores_check_out() {
        let mut rng = StdRng::seed_from_u64(0x7B);
        for _ in 0..60 {
            let len = rng.gen_range(1..250);
            let h: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let mut v = Vec::new();
            for &b in &h {
                match rng.gen_range(0..12) {
                    0 => v.push(rng.gen_range(0..4)),
                    1 => {
                        v.push(rng.gen_range(0..4));
                        v.push(b);
                    }
                    2 => {}
                    _ => v.push(b),
                }
            }
            for x in [3, 11, 41] {
                let p = XDropParams::new(x);
                let base = xdrop3::align(&h, &v, &sc(), p);
                let (out, aln) = xdrop_align_with_traceback(&h, &v, &sc(), p);
                assert_eq!(out.result, base.result);
                assert_eq!(out.stats.cells_computed, base.stats.cells_computed);
                // The reconstructed path must reproduce the score
                // and land exactly on the end cell.
                assert_eq!(
                    score_of_path(&Fwd(&h), &Fwd(&v), &sc(), &aln),
                    out.result.best_score
                );
                let h_consumed = aln
                    .ops
                    .iter()
                    .filter(|o| !matches!(o, AlignOp::InsertV))
                    .count();
                let v_consumed = aln
                    .ops
                    .iter()
                    .filter(|o| !matches!(o, AlignOp::InsertH))
                    .count();
                assert_eq!(h_consumed, out.result.end_h);
                assert_eq!(v_consumed, out.result.end_v);
            }
        }
    }

    #[test]
    fn traceback_memory_is_band_not_matrix() {
        // A long, similar pair: traceback rows cover ~δ_w × diags /4
        // bytes, orders of magnitude below the full matrix.
        let mut rng = StdRng::seed_from_u64(9);
        let h: Vec<u8> = (0..4000).map(|_| rng.gen_range(0..4)).collect();
        let mut v = h.clone();
        for b in v.iter_mut() {
            if rng.gen_bool(0.05) {
                *b = (*b + 1) % 4;
            }
        }
        let (out, _aln) = xdrop_align_with_traceback(&h, &v, &sc(), XDropParams::new(10));
        let full_matrix_bytes = (h.len() + 1) * (v.len() + 1) / 4;
        assert!(
            out.stats.work_bytes < full_matrix_bytes / 20,
            "traceback used {} B, full matrix would be {} B",
            out.stats.work_bytes,
            full_matrix_bytes
        );
    }

    #[test]
    fn empty_inputs() {
        let (out, aln) = xdrop_align_with_traceback(&[], &[], &sc(), XDropParams::new(5));
        assert_eq!(out.result, AlignResult::empty());
        assert!(aln.ops.is_empty());
    }
}
