//! Hirschberg's linear-space global alignment.
//!
//! The paper's §2.2 grounds the space-efficiency discussion in the
//! classical result that the *optimal* alignment can be found "in
//! quadratic time and linear space" (Hirschberg 1975; Myers & Miller
//! 1988 — the paper's [25, 26]). This module supplies that
//! algorithm: divide-and-conquer Needleman-Wunsch using two score
//! rows, recovering the full path in `O(min(m, n))` working memory.
//! It is the linear-space *global* counterpart to the paper's
//! linear-space *extension* kernel, and doubles as an independent
//! oracle for [`crate::reference::needleman_wunsch`].

use crate::reference::{AlignOp, Alignment};
use crate::scoring::Scorer;
use crate::NEG_INF;

/// Forward NW score of aligning all of `v` against prefixes of `h`:
/// returns the last DP row (length `h.len() + 1`).
fn nw_last_row<S: Scorer>(h: &[u8], v: &[u8], scorer: &S) -> Vec<i32> {
    let m = h.len();
    let gap = scorer.gap();
    let mut prev: Vec<i32> = (0..=m).map(|j| j as i32 * gap).collect();
    let mut cur = vec![NEG_INF; m + 1];
    for (i, &vc) in v.iter().enumerate() {
        cur[0] = (i + 1) as i32 * gap;
        for j in 1..=m {
            let diag = prev[j - 1] + scorer.sim(vc, h[j - 1]);
            let left = cur[j - 1] + gap;
            let up = prev[j] + gap;
            cur[j] = diag.max(left).max(up);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// Like [`nw_last_row`] but on the reversed problem.
fn nw_last_row_rev<S: Scorer>(h: &[u8], v: &[u8], scorer: &S) -> Vec<i32> {
    let hr: Vec<u8> = h.iter().rev().copied().collect();
    let vr: Vec<u8> = v.iter().rev().copied().collect();
    nw_last_row(&hr, &vr, scorer)
}

/// Global alignment in linear space; same score as
/// [`crate::reference::needleman_wunsch`].
///
/// # Example
///
/// ```
/// use xdrop_core::hirschberg::hirschberg;
/// use xdrop_core::scoring::MatchMismatch;
/// use xdrop_core::alphabet::encode_dna;
///
/// let h = encode_dna(b"ACGTACGT");
/// let v = encode_dna(b"ACGAACGT");
/// let aln = hirschberg(&h, &v, &MatchMismatch::dna_default());
/// assert_eq!(aln.score, 6); // 7 matches − 1 mismatch
/// assert_eq!(aln.cigar(), "8M");
/// ```
pub fn hirschberg<S: Scorer>(h: &[u8], v: &[u8], scorer: &S) -> Alignment {
    let mut ops = Vec::with_capacity(h.len() + v.len());
    solve(h, v, scorer, &mut ops);
    let score = score_ops(h, v, scorer, &ops);
    Alignment {
        score,
        ops,
        start: (0, 0),
        end: (h.len(), v.len()),
    }
}

fn score_ops<S: Scorer>(h: &[u8], v: &[u8], scorer: &S, ops: &[AlignOp]) -> i32 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut s = 0i32;
    for op in ops {
        match op {
            AlignOp::Subst => {
                s += scorer.sim(v[i], h[j]);
                i += 1;
                j += 1;
            }
            AlignOp::InsertH => {
                s += scorer.gap();
                j += 1;
            }
            AlignOp::InsertV => {
                s += scorer.gap();
                i += 1;
            }
        }
    }
    debug_assert_eq!((i, j), (v.len(), h.len()));
    s
}

fn solve<S: Scorer>(h: &[u8], v: &[u8], scorer: &S, ops: &mut Vec<AlignOp>) {
    // Base cases: one sequence empty, or v of length 1 (solve by a
    // single scan).
    if h.is_empty() {
        ops.extend(std::iter::repeat_n(AlignOp::InsertV, v.len()));
        return;
    }
    if v.is_empty() {
        ops.extend(std::iter::repeat_n(AlignOp::InsertH, h.len()));
        return;
    }
    if v.len() == 1 {
        // Align the single V symbol against the best H position (or
        // take gaps if that's better under the scorer).
        let gap = scorer.gap();
        let all_gaps = (h.len() as i32 + 1) * gap;
        let mut best = (all_gaps, None::<usize>);
        for (j, &hc) in h.iter().enumerate() {
            let s = scorer.sim(v[0], hc) + (h.len() as i32 - 1) * gap;
            if s > best.0 {
                best = (s, Some(j));
            }
        }
        match best.1 {
            Some(j) => {
                ops.extend(std::iter::repeat_n(AlignOp::InsertH, j));
                ops.push(AlignOp::Subst);
                ops.extend(std::iter::repeat_n(AlignOp::InsertH, h.len() - j - 1));
            }
            None => {
                ops.push(AlignOp::InsertV);
                ops.extend(std::iter::repeat_n(AlignOp::InsertH, h.len()));
            }
        }
        return;
    }
    // Divide: split v, find the optimal h split point.
    let mid = v.len() / 2;
    let upper = nw_last_row(h, &v[..mid], scorer);
    let lower = nw_last_row_rev(h, &v[mid..], scorer);
    let m = h.len();
    let mut best_j = 0usize;
    let mut best_s = i64::MIN;
    for j in 0..=m {
        let s = upper[j] as i64 + lower[m - j] as i64;
        if s > best_s {
            best_s = s;
            best_j = j;
        }
    }
    solve(&h[..best_j], &v[..mid], scorer, ops);
    solve(&h[best_j..], &v[mid..], scorer, ops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::reference::needleman_wunsch;
    use crate::scoring::MatchMismatch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    #[test]
    fn identical_sequences() {
        let s = encode_dna(b"ACGTACGTACGT");
        let a = hirschberg(&s, &s, &sc());
        assert_eq!(a.score, 12);
        assert_eq!(a.cigar(), "12M");
    }

    #[test]
    fn empty_cases() {
        let s = encode_dna(b"ACGT");
        assert_eq!(hirschberg(&s, &[], &sc()).cigar(), "4I");
        assert_eq!(hirschberg(&[], &s, &sc()).cigar(), "4D");
        assert!(hirschberg(&[], &[], &sc()).ops.is_empty());
    }

    #[test]
    fn matches_full_matrix_nw_scores() {
        let mut rng = StdRng::seed_from_u64(0x415);
        for _ in 0..60 {
            let hl = rng.gen_range(0..80);
            let vl = rng.gen_range(0..80);
            let h: Vec<u8> = (0..hl).map(|_| rng.gen_range(0..4)).collect();
            let v: Vec<u8> = (0..vl).map(|_| rng.gen_range(0..4)).collect();
            let full = needleman_wunsch(&h, &v, &sc());
            let lin = hirschberg(&h, &v, &sc());
            assert_eq!(lin.score, full.score, "h={hl} v={vl}");
            // Path consumes both sequences entirely.
            let hc = lin
                .ops
                .iter()
                .filter(|o| !matches!(o, AlignOp::InsertV))
                .count();
            let vc = lin
                .ops
                .iter()
                .filter(|o| !matches!(o, AlignOp::InsertH))
                .count();
            assert_eq!((hc, vc), (h.len(), v.len()));
        }
    }

    #[test]
    fn matches_on_related_pairs() {
        let mut rng = StdRng::seed_from_u64(0x416);
        for _ in 0..30 {
            let len = rng.gen_range(1..150);
            let h: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let mut v = Vec::new();
            for &b in &h {
                match rng.gen_range(0..10) {
                    0 => v.push(rng.gen_range(0..4)),
                    1 => {
                        v.push(rng.gen_range(0..4));
                        v.push(b);
                    }
                    2 => {}
                    _ => v.push(b),
                }
            }
            let full = needleman_wunsch(&h, &v, &sc());
            let lin = hirschberg(&h, &v, &sc());
            assert_eq!(lin.score, full.score);
        }
    }
}
