//! A literal transcription of the paper's **Algorithm 1** pseudocode.
//!
//! [`crate::xdrop2`] implements the same algorithm with cleaner
//! bookkeeping (explicit per-diagonal base indices instead of the
//! paper's `L1_inc`/`L2_inc` offset pair) and production concerns
//! (band policies, workspaces, generic score cells). This module
//! keeps a line-by-line port of the listing as published, both as
//! documentation of the correspondence and as a differential test
//! target: `algorithm1_align` must agree with `xdrop2::align`
//! everywhere.
//!
//! Pseudocode (paper, Algorithm 1), with the line numbers used in
//! the comments below:
//!
//! ```text
//!  1: L, U, T', T, k ← 0
//!  2: L1inc, L2inc ← 0
//!  3: A1, A2 ← {−∞, …, −∞}
//!  4: A1[0] ← 0
//!  5: while L ≤ U + 1, increase k by 1:
//!  6:   W2  ← A2 + (−L + L2inc)            ▷ C-style array offsetting
//!  7:   W1  ← A1 + (−L + L2inc + L1inc)
//!  8:   W1' ← A1 + (−L)
//!  9:   wlast ← W1[L − 1]                   ▷ instead of a third anti-diagonal
//! 10:   for i ∈ (L, …, U + 1):
//! 11:     j ← k − i − 1
//! 12:     wnew ← W1[i]
//! 13:     score ← max{ W2[i] − gap, W2[i−1] − gap,
//!                      wlast + sim(H[op(i)], V[op(j)]) }
//! 14:     wlast ← wnew
//! 15:     if score < T − X: score ← −∞
//! 18:     W1'[i] ← score
//! 19:     T' ← max{T', score}
//! 21:   Lprev ← L
//! 22:   L ← max(k + 1 − N, argmin(W1' ≠ −∞))
//! 23:   U ← min(|H| − 1, argmax(W1' ≠ −∞) + 1)
//! 24:   L1inc ← L − Lprev
//! 25:   T ← T'
//! 26:   swap(A1, A2); swap(L1inc, L2inc)
//! ```
//!
//! Reading notes used for this port (the listing is a sketch; these
//! are the interpretations that make it equivalent to the
//! antidiagonal X-Drop it cites): `A1` holds antidiagonal `k − 2`
//! (being overwritten in place with `k`), `A2` holds `k − 1`; the
//! windows `W…` re-base the physical buffers so that logical index
//! `i` (a cell's position along the antidiagonal) addresses the
//! right slot after the band's lower bound moved; `wlast` carries
//! the pre-overwrite value of `W1'[i − 1]`, i.e. the `k − 2` cell
//! one step back, exactly the value a third antidiagonal would have
//! provided.

use crate::scorety::ScoreTy;
use crate::scoring::Scorer;
use crate::seqview::{Fwd, SeqView};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::XDropParams;

/// Algorithm 1, transcribed. Buffers are allocated at full `δ`
/// (the paper restricts them to `δ_b`; use [`crate::xdrop2`] for
/// that — this port keeps the indexing identical to the listing).
pub fn algorithm1_align<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
) -> AlignOutput {
    algorithm1_views(&Fwd(h), &Fwd(v), scorer, params)
}

/// [`algorithm1_align`] over directional views (the paper's `op(·)`).
pub fn algorithm1_views<S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    params: XDropParams,
) -> AlignOutput {
    let (m, n) = (h.len(), v.len());
    let gap = -scorer.gap(); // the listing subtracts `gap`
    let x = params.x;
    let delta = m.min(n) + 1;

    // l.1–2: bounds, best scores, iteration counter, offsets.
    // (Our L/U live on the v-index axis, the candidate range is
    // [l, u + 1] like the listing's (L, …, U + 1).)
    let (mut l, mut u) = (0usize, 0usize);
    let mut t_prime = 0i32;
    let mut t = 0i32;
    let mut k = 0usize;
    // l.3–4: two physical antidiagonals, origin seeded. (The
    // listing seeds A1; for the rotation to line up, the origin —
    // antidiagonal 0, the `k − 1` buffer of the first iteration —
    // must live in the buffer read as W2.)
    let mut a1 = vec![<i32 as ScoreTy>::neg_inf(); delta + 2];
    let mut a2 = vec![<i32 as ScoreTy>::neg_inf(); delta + 2];
    a2[0] = 0;
    // Base index of slot 0 of each buffer (this is what the paper's
    // accumulated L1inc/L2inc offsets reconstruct).
    let mut base1 = 0usize; // a1 holds antidiagonal k−2 (empty before k = 1)
    let mut base2 = 0usize; // a2 holds antidiagonal k−1 (the origin)
    let mut live1: Option<(usize, usize)> = None; // live [lo, hi] stored in a1
    let mut live2 = Some((0usize, 0usize));

    let mut best = AlignResult::empty();
    let mut stats = AlignStats {
        cells_computed: 1,
        delta_w: 1,
        delta,
        work_bytes: 2 * (delta + 2) * 4,
        ..Default::default()
    };

    // l.5: while L ≤ U + 1, increase k.
    while l <= u + 1 {
        k += 1;
        if k > m + n {
            break;
        }
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        // Geometric clamps of the candidate range on antidiagonal k.
        let lo = l.max(k.saturating_sub(m));
        let hi = (u + 1).min(k).min(n);
        if lo > hi {
            break;
        }
        // l.9: wlast ← W1[L − 1]: the k−2 value one slot below the
        // first write.
        let read1 = |a1: &[i32], i: usize| -> i32 {
            match live1 {
                Some((plo, phi)) if i >= plo && i <= phi => a1[i - base1],
                _ => <i32 as ScoreTy>::neg_inf(),
            }
        };
        let read2 = |a2: &[i32], i: usize| -> i32 {
            match live2 {
                Some((plo, phi)) if i >= plo && i <= phi => a2[i - base2],
                _ => <i32 as ScoreTy>::neg_inf(),
            }
        };
        let mut wlast = if lo >= 1 {
            read1(&a1, lo - 1)
        } else {
            <i32 as ScoreTy>::neg_inf()
        };

        let mut t_new = t_prime;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        let mut any = false;
        // l.10: for i in (L, …, U+1) — v-indices of antidiagonal k.
        for i in lo..=hi {
            // l.11: j ← k − i − 1 is the 0-based H symbol; our `j`
            // here is the consumed-prefix length (j symbols of H).
            let j = k - i;
            // l.12: stash the k−2 value at i before overwriting.
            let wnew = read1(&a1, i);
            // l.13: the three-way max.
            let left = read2(&a2, i).saturating_sub(gap); // W2[i] − gap
            let up = if i >= 1 {
                read2(&a2, i - 1).saturating_sub(gap) // W2[i−1] − gap
            } else {
                <i32 as ScoreTy>::neg_inf()
            };
            let diag = if i >= 1 && j >= 1 && !crate::is_dropped(wlast) {
                wlast + scorer.sim(v.at(i - 1), h.at(j - 1))
            } else {
                <i32 as ScoreTy>::neg_inf()
            };
            let mut score = diag.max(left).max(up);
            stats.cells_computed += 1;
            // l.14.
            wlast = wnew;
            // l.15–17: the X-Drop condition.
            if !crate::is_dropped(score) && score < t - x {
                score = <i32 as ScoreTy>::neg_inf();
                stats.cells_dropped += 1;
            }
            // l.18: W1'[i] ← score (in-place overwrite of A1).
            a1[i - lo] = score; // W1' re-bases slot 0 to the new L
            if !crate::is_dropped(score) {
                any = true;
                new_lo = new_lo.min(i);
                new_hi = new_hi.max(i);
                // l.19.
                t_new = t_new.max(score);
                if score > best.best_score {
                    best = AlignResult {
                        best_score: score,
                        end_h: j,
                        end_v: i,
                    };
                }
            }
        }
        stats.antidiagonals += 1;
        base1 = lo;
        live1 = Some((lo, hi));
        if !any {
            break;
        }
        // l.21–23: new bounds from the live cells.
        l = new_lo;
        u = new_hi;
        stats.delta_w = stats.delta_w.max(u - l + 1);
        // l.25.
        t_prime = t_new;
        t = t_prime;
        // l.26: swap the physical buffers and their offsets.
        std::mem::swap(&mut a1, &mut a2);
        std::mem::swap(&mut base1, &mut base2);
        std::mem::swap(&mut live1, &mut live2);
    }
    AlignOutput {
        result: best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::scoring::MatchMismatch;
    use crate::xdrop2::{self, BandPolicy};

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    #[test]
    fn matches_production_kernel_on_fixed_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGT", b"ACGTACGT"),
            (b"ACGTACGTACGT", b"ACGAACGTTCGT"),
            (b"AAAAAAAAAA", b"TTTTTTTTTT"),
            (b"ACGT", b"ACGTACGTACGTACGT"),
            (b"ACGTAACGTACGT", b"ACGTACGTACGT"),
            (b"A", b"C"),
        ];
        for (h, v) in cases {
            let h = encode_dna(h);
            let v = encode_dna(v);
            for x in [0, 2, 5, 20, 1000] {
                let p = XDropParams::new(x);
                let lit = algorithm1_align(&h, &v, &sc(), p);
                let prod = xdrop2::align(&h, &v, &sc(), p, BandPolicy::Grow(4)).unwrap();
                assert_eq!(lit.result, prod.result, "x={x}");
                assert_eq!(lit.stats.cells_computed, prod.stats.cells_computed, "x={x}");
                assert_eq!(lit.stats.delta_w, prod.stats.delta_w, "x={x}");
            }
        }
    }

    #[test]
    fn matches_production_kernel_on_random_pairs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA161);
        for _ in 0..40 {
            let len = rng.gen_range(1..200);
            let h: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
            let mut v = h.clone();
            for b in v.iter_mut() {
                if rng.gen_bool(0.2) {
                    *b = (*b + 1) % 4;
                }
            }
            for x in [1, 7, 25] {
                let p = XDropParams::new(x);
                let lit = algorithm1_align(&h, &v, &sc(), p);
                let prod = xdrop2::align(&h, &v, &sc(), p, BandPolicy::Grow(2)).unwrap();
                assert_eq!(lit.result, prod.result);
                assert_eq!(lit.stats.cells_computed, prod.stats.cells_computed);
            }
        }
    }
}
