//! Error types shared by the aligners.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AlignError>;

/// Errors produced by the aligners in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// The live antidiagonal band grew beyond the configured `δ_b`
    /// under [`crate::xdrop2::BandPolicy::Exact`].
    ///
    /// `needed` is the band width that would have been required to
    /// continue, `delta_b` the configured bound. Re-run with
    /// `δ_b ≥ needed` (or a `Grow`/`Saturate` policy) to complete the
    /// alignment.
    BandExceeded {
        /// Band width required at the failing antidiagonal.
        needed: usize,
        /// Configured band bound.
        delta_b: usize,
        /// Antidiagonal index at which the overflow occurred.
        antidiagonal: usize,
    },
    /// A sequence contained a symbol outside its alphabet.
    InvalidSymbol {
        /// Raw byte that failed to encode.
        byte: u8,
        /// Position of the offending byte in the input.
        position: usize,
    },
    /// A seed match referenced positions outside its sequences.
    SeedOutOfBounds {
        /// Offending coordinate, as `(h_pos, v_pos)`.
        seed: (usize, usize),
        /// Sequence lengths, as `(h_len, v_len)`.
        lens: (usize, usize),
    },
    /// `δ_b = 0` or another degenerate configuration was supplied.
    InvalidConfig(&'static str),
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::BandExceeded {
                needed,
                delta_b,
                antidiagonal,
            } => write!(
                f,
                "band overflow on antidiagonal {antidiagonal}: needed width {needed} \
                 but δ_b = {delta_b}"
            ),
            AlignError::InvalidSymbol { byte, position } => {
                write!(f, "invalid symbol {byte:#04x} at position {position}")
            }
            AlignError::SeedOutOfBounds { seed, lens } => write!(
                f,
                "seed at (h={}, v={}) outside sequences of length (h={}, v={})",
                seed.0, seed.1, lens.0, lens.1
            ),
            AlignError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = AlignError::BandExceeded {
            needed: 100,
            delta_b: 64,
            antidiagonal: 42,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("64") && s.contains("42"));

        let e = AlignError::InvalidSymbol {
            byte: 0x58,
            position: 7,
        };
        assert!(e.to_string().contains("0x58"));

        let e = AlignError::SeedOutOfBounds {
            seed: (10, 20),
            lens: (5, 5),
        };
        assert!(e.to_string().contains("h=10"));

        let e = AlignError::InvalidConfig("δ_b must be nonzero");
        assert!(e.to_string().contains("nonzero"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<AlignError>();
    }
}
