//! Many-to-many alignment workloads.
//!
//! The unit of work in ELBA/PASTIS-style pipelines is a *comparison*:
//! a pair of sequences plus a seed match to extend. The paper's tile
//! data structures (§4.1.1) deliberately keep the sequence set
//! *detached* from the seed list — a sequence is stored once per tile
//! and referenced by any number of comparisons, which is what the
//! graph partitioner (§4.3) exploits to cut host-to-device traffic.
//! These types mirror that representation host-side.

use crate::alphabet::Alphabet;
use crate::extension::SeedMatch;

/// An indexed pool of encoded sequences.
///
/// Two representations share this type: the ordinary *resident* pool
/// holding every payload, and a *skeleton* pool (see
/// [`SeqSet::skeleton`]) that records only lengths — what the
/// out-of-core planners operate on when the payload bytes are
/// streamed window by window and never fully resident.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SeqSet {
    /// Alphabet all sequences are encoded in.
    pub alphabet: Alphabet,
    seqs: Vec<Vec<u8>>,
    /// Lengths-only mode: when set, `seqs` is empty and lengths come
    /// from here; [`SeqSet::get`] is unavailable.
    lens: Option<Vec<u32>>,
}

impl SeqSet {
    /// An empty pool.
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            seqs: Vec::new(),
            lens: None,
        }
    }

    /// A lengths-only pool: `len`/`seq_len`/`total_bytes` behave as
    /// if `lens[i]` bytes were stored for sequence `i`, but no
    /// payload is resident and [`SeqSet::get`] panics. Batch
    /// planning and graph partitioning read only lengths, so a
    /// skeleton drives them byte-identically to the resident pool.
    pub fn skeleton(alphabet: Alphabet, lens: Vec<u32>) -> Self {
        Self {
            alphabet,
            seqs: Vec::new(),
            lens: Some(lens),
        }
    }

    /// Whether this pool is lengths-only.
    pub fn is_skeleton(&self) -> bool {
        self.lens.is_some()
    }

    /// Adds a sequence and returns its id.
    pub fn push(&mut self, seq: Vec<u8>) -> SeqId {
        assert!(
            self.lens.is_none(),
            "cannot push payloads into a skeleton SeqSet"
        );
        let id = self.seqs.len() as SeqId;
        self.seqs.push(seq);
        id
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        match &self.lens {
            Some(lens) => lens.len(),
            None => self.seqs.len(),
        }
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sequence with id `id`. Panics on a skeleton pool — the
    /// payload was never materialized.
    pub fn get(&self, id: SeqId) -> &[u8] {
        assert!(
            self.lens.is_none(),
            "sequence payloads are not resident in a skeleton SeqSet"
        );
        &self.seqs[id as usize]
    }

    /// Length in symbols of sequence `id`.
    pub fn seq_len(&self, id: SeqId) -> usize {
        match &self.lens {
            Some(lens) => lens[id as usize] as usize,
            None => self.seqs[id as usize].len(),
        }
    }

    /// Iterates over `(id, sequence)` pairs. Panics on a skeleton
    /// pool.
    pub fn iter(&self) -> impl Iterator<Item = (SeqId, &[u8])> {
        assert!(
            self.lens.is_none(),
            "sequence payloads are not resident in a skeleton SeqSet"
        );
        self.seqs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as SeqId, s.as_slice()))
    }

    /// Total bytes of sequence payload (1 byte per symbol, as stored
    /// in tile SRAM).
    pub fn total_bytes(&self) -> usize {
        match &self.lens {
            Some(lens) => lens.iter().map(|&l| l as usize).sum(),
            None => self.seqs.iter().map(Vec::len).sum(),
        }
    }
}

/// Index of a sequence within a [`SeqSet`].
pub type SeqId = u32;

/// One planned pairwise comparison: two sequences and a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Comparison {
    /// Id of the `H` sequence.
    pub h: SeqId,
    /// Id of the `V` sequence.
    pub v: SeqId,
    /// Seed match to extend.
    pub seed: SeedMatch,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(h: SeqId, v: SeqId, seed: SeedMatch) -> Self {
        Self { h, v, seed }
    }
}

/// A full many-to-many workload: a sequence pool plus the comparisons
/// to run on it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// The sequence pool.
    pub seqs: SeqSet,
    /// The comparisons (seed extensions) to perform.
    pub comparisons: Vec<Comparison>,
}

impl Workload {
    /// An empty workload.
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            seqs: SeqSet::new(alphabet),
            comparisons: Vec::new(),
        }
    }

    /// A lengths-only workload (see [`SeqSet::skeleton`]): enough for
    /// complexity estimates, batch planning and graph partitioning,
    /// with no sequence payload resident.
    pub fn skeleton(alphabet: Alphabet, lens: Vec<u32>, comparisons: Vec<Comparison>) -> Self {
        Self {
            seqs: SeqSet::skeleton(alphabet, lens),
            comparisons,
        }
    }

    /// Work estimate for one comparison: the paper batches by the
    /// worst-case quadratic cost `|H| × |V|` (§4.2).
    pub fn complexity(&self, c: &Comparison) -> u64 {
        self.seqs.seq_len(c.h) as u64 * self.seqs.seq_len(c.v) as u64
    }

    /// Sum of [`Self::complexity`] over all comparisons.
    pub fn total_complexity(&self) -> u64 {
        self.comparisons.iter().map(|c| self.complexity(c)).sum()
    }

    /// Theoretical GCUPS numerator: total `|H| × |V|` cells.
    pub fn theoretical_cells(&self) -> u64 {
        self.total_complexity()
    }

    /// Left-extension lengths `(h, v)` of a comparison — how far the
    /// backwards extension can at most run.
    pub fn left_lens(&self, c: &Comparison) -> (usize, usize) {
        (c.seed.h_pos, c.seed.v_pos)
    }

    /// Right-extension lengths `(h, v)` of a comparison.
    pub fn right_lens(&self, c: &Comparison) -> (usize, usize) {
        (
            self.seqs.seq_len(c.h) - c.seed.h_pos - c.seed.k,
            self.seqs.seq_len(c.v) - c.seed.v_pos - c.seed.k,
        )
    }

    /// Checks every comparison references valid sequences and seeds.
    pub fn validate(&self) -> crate::error::Result<()> {
        for c in &self.comparisons {
            if c.h as usize >= self.seqs.len() || c.v as usize >= self.seqs.len() {
                return Err(crate::error::AlignError::SeedOutOfBounds {
                    seed: (c.seed.h_pos, c.seed.v_pos),
                    lens: (0, 0),
                });
            }
            c.seed
                .validate(self.seqs.seq_len(c.h), self.seqs.seq_len(c.v))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Workload {
        let mut w = Workload::new(Alphabet::Dna);
        let a = w.seqs.push(vec![0; 10]);
        let b = w.seqs.push(vec![1; 20]);
        w.comparisons
            .push(Comparison::new(a, b, SeedMatch::new(2, 4, 3)));
        w
    }

    #[test]
    fn seqset_basics() {
        let w = tiny();
        assert_eq!(w.seqs.len(), 2);
        assert!(!w.seqs.is_empty());
        assert_eq!(w.seqs.seq_len(0), 10);
        assert_eq!(w.seqs.get(1), &[1u8; 20][..]);
        assert_eq!(w.seqs.total_bytes(), 30);
        assert_eq!(w.seqs.iter().count(), 2);
    }

    #[test]
    fn complexity_is_product() {
        let w = tiny();
        assert_eq!(w.complexity(&w.comparisons[0]), 200);
        assert_eq!(w.total_complexity(), 200);
        assert_eq!(w.theoretical_cells(), 200);
    }

    #[test]
    fn extension_lengths() {
        let w = tiny();
        let c = &w.comparisons[0];
        assert_eq!(w.left_lens(c), (2, 4));
        assert_eq!(w.right_lens(c), (10 - 2 - 3, 20 - 4 - 3));
    }

    #[test]
    fn validate_catches_bad_seed() {
        let mut w = tiny();
        assert!(w.validate().is_ok());
        w.comparisons
            .push(Comparison::new(0, 1, SeedMatch::new(9, 0, 5)));
        assert!(w.validate().is_err());
    }

    #[test]
    fn skeleton_reports_lengths_without_payload() {
        let full = tiny();
        let lens: Vec<u32> = (0..full.seqs.len() as u32)
            .map(|i| full.seqs.seq_len(i) as u32)
            .collect();
        let sk = Workload::skeleton(Alphabet::Dna, lens, full.comparisons.clone());
        assert!(sk.seqs.is_skeleton());
        assert_eq!(sk.seqs.len(), full.seqs.len());
        assert_eq!(sk.seqs.total_bytes(), full.seqs.total_bytes());
        for i in 0..full.seqs.len() as u32 {
            assert_eq!(sk.seqs.seq_len(i), full.seqs.seq_len(i));
        }
        let c = &full.comparisons[0];
        assert_eq!(sk.complexity(c), full.complexity(c));
        assert_eq!(sk.left_lens(c), full.left_lens(c));
        assert_eq!(sk.right_lens(c), full.right_lens(c));
        assert!(sk.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn skeleton_get_panics() {
        let sk = Workload::skeleton(Alphabet::Dna, vec![10], Vec::new());
        let _ = sk.seqs.get(0);
    }

    #[test]
    fn validate_catches_bad_id() {
        let mut w = tiny();
        w.comparisons
            .push(Comparison::new(7, 1, SeedMatch::new(0, 0, 1)));
        assert!(w.validate().is_err());
    }
}
