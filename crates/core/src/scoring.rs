//! Scoring schemes.
//!
//! The paper evaluates DNA alignment with a match/mismatch score and
//! a linear gap penalty, and protein alignment (for PASTIS) with
//! BLOSUM62 and gap −2. Both are expressed through the [`Scorer`]
//! trait, which the aligners accept generically so the inner loop
//! monomorphizes to a direct table lookup.

use crate::alphabet::{Alphabet, PROTEIN_CODES};

/// A substitution scoring scheme with a linear gap penalty.
///
/// Implementors must be cheap to call: `sim` sits in the innermost
/// DP loop and is expected to inline to a comparison or a table load.
pub trait Scorer {
    /// Similarity score of aligning codes `a` and `b`.
    fn sim(&self, a: u8, b: u8) -> i32;

    /// Linear gap penalty (a negative number).
    fn gap(&self) -> i32;

    /// The alphabet this scorer is defined over.
    fn alphabet(&self) -> Alphabet;

    /// Score of a perfect `len`-symbol seed match, used when stitching
    /// the left and right extensions of a seed back together.
    ///
    /// The default assumes every seed symbol scores like a best-case
    /// match; [`Blosum62`] overrides this because residue self-scores
    /// differ.
    fn seed_score(&self, seed_h: &[u8], seed_v: &[u8]) -> i32 {
        debug_assert_eq!(seed_h.len(), seed_v.len());
        seed_h
            .iter()
            .zip(seed_v)
            .map(|(&a, &b)| self.sim(a, b))
            .sum()
    }

    /// Returns the scheme's parameters if it is a plain
    /// match/mismatch scheme.
    ///
    /// The explicit-SIMD kernel uses this to replace the per-cell
    /// `sim` call (a table gather for matrix scorers) with a vector
    /// compare-and-select. Matrix scorers return `None` and keep the
    /// generic per-cell path.
    #[inline(always)]
    fn as_match_mismatch(&self) -> Option<MatchMismatch> {
        None
    }
}

/// Match/mismatch scoring for DNA with a linear gap penalty.
///
/// The paper's DNA experiments use `(+1, −1, −1)`; LOGAN's defaults
/// are the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MatchMismatch {
    /// Score for `a == b` (positive).
    pub match_score: i32,
    /// Score for `a != b` (negative).
    pub mismatch_score: i32,
    /// Linear gap penalty (negative).
    pub gap_penalty: i32,
}

impl MatchMismatch {
    /// Creates a scheme; `mat` should be positive, `mis` and `gap`
    /// negative.
    pub fn new(mat: i32, mis: i32, gap: i32) -> Self {
        Self {
            match_score: mat,
            mismatch_score: mis,
            gap_penalty: gap,
        }
    }

    /// The paper's DNA defaults: `+1 / −1 / −1`.
    pub fn dna_default() -> Self {
        Self::new(1, -1, -1)
    }
}

impl Scorer for MatchMismatch {
    #[inline(always)]
    fn sim(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            self.mismatch_score
        }
    }

    #[inline(always)]
    fn gap(&self) -> i32 {
        self.gap_penalty
    }

    fn alphabet(&self) -> Alphabet {
        Alphabet::Dna
    }

    #[inline(always)]
    fn as_match_mismatch(&self) -> Option<MatchMismatch> {
        Some(*self)
    }
}

/// The standard 24×24 BLOSUM62 substitution matrix in
/// `ARNDCQEGHILKMFPSTWYVBZX*` order (Henikoff & Henikoff 1992, as
/// shipped by NCBI).
#[rustfmt::skip]
pub const BLOSUM62: [[i8; PROTEIN_CODES]; PROTEIN_CODES] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4], // A
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4], // R
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4], // N
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4], // D
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4], // C
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4], // Q
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // E
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4], // G
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4], // H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4], // I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4], // L
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4], // K
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4], // M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4], // F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4], // P
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4], // T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4], // W
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4], // Y
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4], // V
    [-2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4], // B
    [-1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4], // Z
    [ 0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4], // X
    [-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1], // *
];

/// BLOSUM62 protein scoring with a linear gap penalty.
///
/// The paper's PASTIS experiments use gap −2 (Selvitopi et al.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Blosum62 {
    /// Linear gap penalty (negative).
    pub gap_penalty: i32,
}

impl Blosum62 {
    /// BLOSUM62 with the given linear gap penalty.
    pub fn new(gap: i32) -> Self {
        Self { gap_penalty: gap }
    }

    /// The PASTIS configuration from the paper: gap −2.
    pub fn pastis_default() -> Self {
        Self::new(-2)
    }
}

impl Scorer for Blosum62 {
    #[inline(always)]
    fn sim(&self, a: u8, b: u8) -> i32 {
        BLOSUM62[a as usize][b as usize] as i32
    }

    #[inline(always)]
    fn gap(&self) -> i32 {
        self.gap_penalty
    }

    fn alphabet(&self) -> Alphabet {
        Alphabet::Protein
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_protein;

    #[test]
    fn match_mismatch_basics() {
        let s = MatchMismatch::dna_default();
        assert_eq!(s.sim(0, 0), 1);
        assert_eq!(s.sim(0, 1), -1);
        assert_eq!(s.gap(), -1);
        assert_eq!(s.alphabet(), Alphabet::Dna);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetry check reads (a, b) and (b, a)
    fn blosum62_is_symmetric() {
        for a in 0..PROTEIN_CODES {
            for b in 0..PROTEIN_CODES {
                assert_eq!(BLOSUM62[a][b], BLOSUM62[b][a], "asymmetric at ({a},{b})");
            }
        }
    }

    #[test]
    fn blosum62_known_values() {
        let s = Blosum62::pastis_default();
        let w = encode_protein(b"W")[0];
        let a = encode_protein(b"A")[0];
        let c = encode_protein(b"C")[0];
        let e = encode_protein(b"E")[0];
        let q = encode_protein(b"Q")[0];
        assert_eq!(s.sim(w, w), 11);
        assert_eq!(s.sim(a, a), 4);
        assert_eq!(s.sim(c, c), 9);
        assert_eq!(s.sim(e, q), 2);
        assert_eq!(s.sim(a, w), -3);
        assert_eq!(s.gap(), -2);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // diagonal check
    fn blosum62_diagonal_positive_for_residues() {
        // Every concrete residue must have a positive self-score.
        for a in 0..20 {
            assert!(BLOSUM62[a][a] > 0, "self-score of residue {a} not positive");
        }
    }

    #[test]
    fn match_mismatch_downcast_hook() {
        let s = MatchMismatch::new(2, -3, -4);
        assert_eq!(s.as_match_mismatch(), Some(s));
        assert_eq!(Blosum62::pastis_default().as_match_mismatch(), None);
    }

    #[test]
    fn seed_score_sums_sim() {
        let s = MatchMismatch::dna_default();
        assert_eq!(s.seed_score(&[0, 1, 2], &[0, 1, 2]), 3);
        assert_eq!(s.seed_score(&[0, 1, 2], &[0, 3, 2]), 1);

        let p = Blosum62::pastis_default();
        let h = encode_protein(b"WAC");
        assert_eq!(p.seed_score(&h, &h), 11 + 4 + 9);
    }
}
