//! Full dynamic-programming reference aligners.
//!
//! These are deliberately simple quadratic-space implementations used
//! as ground truth for the space-efficient antidiagonal algorithms:
//!
//! * [`needleman_wunsch`] — global alignment.
//! * [`smith_waterman`] — local alignment.
//! * [`extend_full`] — semi-global extension (anchored at the origin,
//!   free at the far end), computed row-wise with *no* pruning; this
//!   equals X-Drop with `X = ∞`.
//! * [`xdrop_full_matrix`] — X-Drop computed over a fully allocated
//!   matrix with exactly the antidiagonal band rule of Zhang et al.;
//!   [`crate::xdrop3`] and [`crate::xdrop2`] must match it cell for
//!   cell.
//!
//! None of these fit in IPU tile SRAM for the paper's sequence
//! lengths — that is the point of the memory-restricted algorithm.

use crate::scoring::Scorer;
use crate::seqview::{Fwd, SeqView};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::{is_dropped, XDropParams, NEG_INF};

/// One step of an alignment path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Diagonal move: `H[j]` aligned to `V[i]` (match or mismatch).
    Subst,
    /// Horizontal move: gap in `V` (consumes one `H` symbol).
    InsertH,
    /// Vertical move: gap in `H` (consumes one `V` symbol).
    InsertV,
}

/// A scored alignment with an explicit operation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Total score of the path.
    pub score: i32,
    /// Path operations from the start of the alignment to its end.
    pub ops: Vec<AlignOp>,
    /// Start coordinate `(h, v)` of the path (nonzero only for local
    /// alignment).
    pub start: (usize, usize),
    /// End coordinate `(h, v)` of the path.
    pub end: (usize, usize),
}

impl Alignment {
    /// Number of substitution steps in the path.
    pub fn substitutions(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Subst))
            .count()
    }

    /// Number of gap steps in the path.
    pub fn gaps(&self) -> usize {
        self.ops.len() - self.substitutions()
    }

    /// Renders the path as a CIGAR-like string (`M`, `I`, `D` runs),
    /// with `I` consuming `H` and `D` consuming `V`.
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run_op: Option<AlignOp> = None;
        let mut run_len = 0usize;
        let flush = |op: Option<AlignOp>, len: usize, out: &mut String| {
            if let Some(op) = op {
                let c = match op {
                    AlignOp::Subst => 'M',
                    AlignOp::InsertH => 'I',
                    AlignOp::InsertV => 'D',
                };
                out.push_str(&format!("{len}{c}"));
            }
        };
        for &op in &self.ops {
            if Some(op) == run_op {
                run_len += 1;
            } else {
                flush(run_op, run_len, &mut out);
                run_op = Some(op);
                run_len = 1;
            }
        }
        flush(run_op, run_len, &mut out);
        out
    }
}

fn dp_dims(h: &[u8], v: &[u8]) -> (usize, usize) {
    (h.len(), v.len())
}

/// Global (Needleman-Wunsch) alignment of `h` against `v` with linear
/// gaps, returning the full path.
#[allow(clippy::needless_range_loop)] // index loops over related arrays
pub fn needleman_wunsch<S: Scorer>(h: &[u8], v: &[u8], scorer: &S) -> Alignment {
    let (m, n) = dp_dims(h, v);
    let gap = scorer.gap();
    let width = m + 1;
    let mut dp = vec![0i32; (n + 1) * width];
    for j in 1..=m {
        dp[j] = j as i32 * gap;
    }
    for i in 1..=n {
        dp[i * width] = i as i32 * gap;
        for j in 1..=m {
            let diag = dp[(i - 1) * width + (j - 1)] + scorer.sim(v[i - 1], h[j - 1]);
            let left = dp[i * width + (j - 1)] + gap;
            let up = dp[(i - 1) * width + j] + gap;
            dp[i * width + j] = diag.max(left).max(up);
        }
    }
    // Traceback.
    let mut ops = Vec::with_capacity(m + n);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let cur = dp[i * width + j];
        if i > 0 && j > 0 && cur == dp[(i - 1) * width + (j - 1)] + scorer.sim(v[i - 1], h[j - 1]) {
            ops.push(AlignOp::Subst);
            i -= 1;
            j -= 1;
        } else if j > 0 && cur == dp[i * width + (j - 1)] + gap {
            ops.push(AlignOp::InsertH);
            j -= 1;
        } else {
            debug_assert!(i > 0 && cur == dp[(i - 1) * width + j] + gap);
            ops.push(AlignOp::InsertV);
            i -= 1;
        }
    }
    ops.reverse();
    Alignment {
        score: dp[n * width + m],
        ops,
        start: (0, 0),
        end: (m, n),
    }
}

/// Local (Smith-Waterman) alignment of `h` against `v` with linear
/// gaps, returning the best-scoring local path.
pub fn smith_waterman<S: Scorer>(h: &[u8], v: &[u8], scorer: &S) -> Alignment {
    let (m, n) = dp_dims(h, v);
    let gap = scorer.gap();
    let width = m + 1;
    let mut dp = vec![0i32; (n + 1) * width];
    let (mut best, mut best_i, mut best_j) = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let diag = dp[(i - 1) * width + (j - 1)] + scorer.sim(v[i - 1], h[j - 1]);
            let left = dp[i * width + (j - 1)] + gap;
            let up = dp[(i - 1) * width + j] + gap;
            let val = diag.max(left).max(up).max(0);
            dp[i * width + j] = val;
            if val > best {
                best = val;
                best_i = i;
                best_j = j;
            }
        }
    }
    // Traceback from the best cell until a zero cell.
    let mut ops = Vec::new();
    let (mut i, mut j) = (best_i, best_j);
    while i > 0 && j > 0 && dp[i * width + j] > 0 {
        let cur = dp[i * width + j];
        if cur == dp[(i - 1) * width + (j - 1)] + scorer.sim(v[i - 1], h[j - 1]) {
            ops.push(AlignOp::Subst);
            i -= 1;
            j -= 1;
        } else if cur == dp[i * width + (j - 1)] + gap {
            ops.push(AlignOp::InsertH);
            j -= 1;
        } else if cur == dp[(i - 1) * width + j] + gap {
            ops.push(AlignOp::InsertV);
            i -= 1;
        } else {
            break; // restart cell (val came from the 0 clamp)
        }
    }
    ops.reverse();
    Alignment {
        score: best,
        ops,
        start: (j, i),
        end: (best_j, best_i),
    }
}

/// Semi-global extension without pruning: the alignment is anchored
/// at `(0, 0)` and may end anywhere; the best score over all cells is
/// returned. Equivalent to X-Drop with `X = ∞`.
#[allow(clippy::needless_range_loop)] // index loops over related arrays
pub fn extend_full<S: Scorer>(h: &[u8], v: &[u8], scorer: &S) -> AlignOutput {
    let (m, n) = dp_dims(h, v);
    let gap = scorer.gap();
    let mut prev = vec![0i32; m + 1];
    let mut cur = vec![0i32; m + 1];
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as i32 * gap;
    }
    // Tie-break identical to the antidiagonal algorithms: prefer the
    // lower antidiagonal (i + j), then the lower v-index i. Row-major
    // iteration visits increasing i, so within one row increasing j
    // is increasing antidiagonal; across rows we must compare
    // explicitly.
    let mut best = AlignResult::empty();
    let better = |score: i32, i: usize, j: usize, best: &mut AlignResult| {
        let cand_d = i + j;
        let cur_d = best.end_antidiagonal();
        if score > best.best_score
            || (score == best.best_score && (cand_d < cur_d || (cand_d == cur_d && i < best.end_v)))
        {
            *best = AlignResult {
                best_score: score,
                end_h: j,
                end_v: i,
            };
        }
    };
    for j in 0..=m {
        better(prev[j], 0, j, &mut best);
    }
    let mut cells = m as u64; // row 0 boundary cells beyond origin
    for i in 1..=n {
        cur[0] = i as i32 * gap;
        better(cur[0], i, 0, &mut best);
        for j in 1..=m {
            let diag = prev[j - 1] + scorer.sim(v[i - 1], h[j - 1]);
            let left = cur[j - 1] + gap;
            let up = prev[j] + gap;
            cur[j] = diag.max(left).max(up);
            better(cur[j], i, j, &mut best);
        }
        cells += (m + 1) as u64;
        std::mem::swap(&mut prev, &mut cur);
    }
    let delta = m.min(n) + 1;
    AlignOutput {
        result: best,
        stats: AlignStats {
            cells_computed: cells,
            antidiagonals: (m + n) as u64,
            delta_w: delta,
            delta,
            work_bytes: 2 * (m + 1) * 4,
            cells_dropped: 0,
            cells_clipped: 0,
        },
    }
}

/// X-Drop semi-global extension computed over a fully allocated
/// matrix, following exactly the antidiagonal band rule of Zhang et
/// al.: candidates for antidiagonal `d+1` span `[L_d, U_d + 1]`
/// (clamped to the matrix), the drop test compares against the best
/// score `T` as of antidiagonal `d`, and `T` is updated only after a
/// full sweep.
///
/// This is the semantic specification that [`crate::xdrop3`] and
/// [`crate::xdrop2`] reproduce in `3δ` and `2δ_b` memory.
pub fn xdrop_full_matrix<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
) -> AlignOutput {
    xdrop_full_matrix_views(Fwd(h), Fwd(v), scorer, params)
}

/// [`xdrop_full_matrix`] over directional [`SeqView`]s.
pub fn xdrop_full_matrix_views<S: Scorer, HV: SeqView, VV: SeqView>(
    h: HV,
    v: VV,
    scorer: &S,
    params: XDropParams,
) -> AlignOutput {
    let (m, n) = (h.len(), v.len());
    let gap = scorer.gap();
    let x = params.x;
    let width = m + 1;
    let mut dp = vec![NEG_INF; (n + 1) * width];
    dp[0] = 0;

    let mut best = AlignResult::empty();
    let mut t_best = 0i32; // T: best score as of the previous sweep
    let (mut lo, mut hi) = (0usize, 0usize); // live L_d, U_d (v-indices)
    let mut stats = AlignStats {
        delta: m.min(n) + 1,
        work_bytes: (n + 1) * width * 4,
        ..Default::default()
    };
    stats.delta_w = 1;
    stats.cells_computed = 1;

    for d in 1..=(m + n) {
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        // Candidate i-range for this antidiagonal (Algorithm 1 l.22-23).
        let geo_lo = d.saturating_sub(m);
        let geo_hi = d.min(n);
        let cand_lo = lo.max(geo_lo);
        let cand_hi = (hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            break;
        }
        let mut t_new = t_best;
        let mut any_live = false;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        for i in cand_lo..=cand_hi {
            let j = d - i;
            let diag = if i >= 1 && j >= 1 {
                let p = dp[(i - 1) * width + (j - 1)];
                if is_dropped(p) {
                    NEG_INF
                } else {
                    p + scorer.sim(v.at(i - 1), h.at(j - 1))
                }
            } else {
                NEG_INF
            };
            let left = if j >= 1 {
                dp[i * width + (j - 1)].saturating_add(gap)
            } else {
                NEG_INF
            };
            let up = if i >= 1 {
                dp[(i - 1) * width + j].saturating_add(gap)
            } else {
                NEG_INF
            };
            let mut score = diag.max(left).max(up);
            stats.cells_computed += 1;
            if !is_dropped(score) && score < t_best - x {
                score = NEG_INF;
                stats.cells_dropped += 1;
            }
            if !is_dropped(score) {
                dp[i * width + j] = score;
                any_live = true;
                new_lo = new_lo.min(i);
                new_hi = new_hi.max(i);
                t_new = t_new.max(score);
                if score > best.best_score {
                    best = AlignResult {
                        best_score: score,
                        end_h: j,
                        end_v: i,
                    };
                }
            }
        }
        stats.antidiagonals += 1;
        if !any_live {
            break;
        }
        lo = new_lo;
        hi = new_hi;
        stats.delta_w = stats.delta_w.max(hi - lo + 1);
        t_best = t_new;
    }
    AlignOutput {
        result: best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::scoring::MatchMismatch;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    #[test]
    fn nw_identical_sequences() {
        let s = encode_dna(b"ACGTACGT");
        let a = needleman_wunsch(&s, &s, &sc());
        assert_eq!(a.score, 8);
        assert_eq!(a.substitutions(), 8);
        assert_eq!(a.gaps(), 0);
        assert_eq!(a.cigar(), "8M");
    }

    #[test]
    fn nw_single_mismatch() {
        let h = encode_dna(b"ACGTACGT");
        let v = encode_dna(b"ACGAACGT");
        let a = needleman_wunsch(&h, &v, &sc());
        assert_eq!(a.score, 6); // 7 matches - 1 mismatch
    }

    #[test]
    fn nw_gap() {
        let h = encode_dna(b"ACGTACGT");
        let v = encode_dna(b"ACGACGT"); // one deletion
        let a = needleman_wunsch(&h, &v, &sc());
        assert_eq!(a.score, 6); // 7 matches - 1 gap
        assert_eq!(a.gaps(), 1);
    }

    #[test]
    fn nw_empty_vs_nonempty() {
        let h = encode_dna(b"ACGT");
        let a = needleman_wunsch(&h, &[], &sc());
        assert_eq!(a.score, -4);
        assert_eq!(a.cigar(), "4I");
    }

    #[test]
    fn sw_finds_embedded_match() {
        let h = encode_dna(b"TTTTACGTACGTTTTT");
        let v = encode_dna(b"GGGGACGTACGGGGG");
        let a = smith_waterman(&h, &v, &sc());
        assert_eq!(a.score, 7); // ACGTACG common
        assert_eq!(a.substitutions(), 7);
    }

    #[test]
    fn sw_no_similarity_scores_low() {
        let h = encode_dna(b"AAAAAAA");
        let v = encode_dna(b"CCCCCCC");
        let a = smith_waterman(&h, &v, &sc());
        assert_eq!(a.score, 0);
        assert!(a.ops.is_empty());
    }

    #[test]
    fn extend_full_identical() {
        let s = encode_dna(b"ACGTACGTAC");
        let out = extend_full(&s, &s, &sc());
        assert_eq!(out.result.best_score, 10);
        assert_eq!(out.result.end_h, 10);
        assert_eq!(out.result.end_v, 10);
    }

    #[test]
    fn extend_full_prefers_prefix_on_divergence() {
        // Identical 6-symbol prefix, then total divergence: extension
        // should stop at the prefix.
        let h = encode_dna(b"ACGTACCCCCCCCC");
        let v = encode_dna(b"ACGTACGGGGGGGG");
        let out = extend_full(&h, &v, &sc());
        assert_eq!(out.result.best_score, 6);
        assert_eq!(out.result.end_h, 6);
        assert_eq!(out.result.end_v, 6);
    }

    #[test]
    fn extend_full_empty_inputs() {
        let h = encode_dna(b"ACGT");
        let out = extend_full(&h, &[], &sc());
        assert_eq!(out.result, AlignResult::empty());
        let out = extend_full(&[], &[], &sc());
        assert_eq!(out.result, AlignResult::empty());
    }

    #[test]
    fn xdrop_full_equals_extend_full_when_unbounded() {
        let h = encode_dna(b"ACGTTCGTACGTAAGGTACGTACGTTTT");
        let v = encode_dna(b"ACGTACGTACGTAAGGTACGAACGT");
        let a = extend_full(&h, &v, &sc());
        let b = xdrop_full_matrix(&h, &v, &sc(), XDropParams::unbounded());
        assert_eq!(a.result.best_score, b.result.best_score);
        assert_eq!(a.result.end_h, b.result.end_h);
        assert_eq!(a.result.end_v, b.result.end_v);
    }

    #[test]
    fn xdrop_prunes_hopeless_extension() {
        let h = encode_dna(b"ACGTACGTCCCCCCCCCCCCCCCCCCCC");
        let v = encode_dna(b"ACGTACGTGGGGGGGGGGGGGGGGGGGG");
        let out = xdrop_full_matrix(&h, &v, &sc(), XDropParams::new(3));
        assert_eq!(out.result.best_score, 8);
        // With X = 3 the sweep must terminate long before the full
        // matrix is explored.
        assert!(out.stats.cells_computed < (h.len() * v.len()) as u64 / 2);
        assert!(out.stats.cells_dropped > 0);
    }

    #[test]
    fn xdrop_small_x_smaller_band_than_large_x() {
        let h = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let v = encode_dna(b"ACGAACGTACGTACTTACGTACGAACGTACGT");
        let small = xdrop_full_matrix(&h, &v, &sc(), XDropParams::new(2));
        let large = xdrop_full_matrix(&h, &v, &sc(), XDropParams::new(50));
        assert!(small.stats.cells_computed <= large.stats.cells_computed);
        assert!(small.stats.delta_w <= large.stats.delta_w);
    }

    #[test]
    fn xdrop_max_antidiagonal_cap() {
        let s = encode_dna(b"ACGTACGTACGTACGT");
        let out = xdrop_full_matrix(
            &s,
            &s,
            &sc(),
            XDropParams::new(10).with_max_antidiagonals(4),
        );
        assert_eq!(out.stats.antidiagonals, 4);
        assert!(out.result.best_score <= 4);
    }

    #[test]
    fn cigar_rendering() {
        let a = Alignment {
            score: 0,
            ops: vec![
                AlignOp::Subst,
                AlignOp::Subst,
                AlignOp::InsertH,
                AlignOp::Subst,
                AlignOp::InsertV,
                AlignOp::InsertV,
            ],
            start: (0, 0),
            end: (4, 3),
        };
        assert_eq!(a.cigar(), "2M1I1M2D");
    }
}
