//! The classical three-antidiagonal X-Drop (Zhang et al. 1998/2000).
//!
//! This is the formulation used by BLAST, SeqAn and LOGAN: the
//! scoring matrix is swept antidiagonal by antidiagonal, and because
//! a cell only depends on the two previous antidiagonals, three
//! rolling buffers of length `δ = min(|H|, |V|) + 1` suffice — `3δ`
//! working memory. The paper's contribution ([`crate::xdrop2`])
//! shrinks this to `2δ_b`; this module is both the CPU baseline and
//! the differential-testing oracle for it.
//!
//! Buffers are indexed by `i − geo_lo(d)` where `i` is the `V` index
//! of a cell and `geo_lo(d) = max(0, d − |H|)` is the geometric lower
//! bound of antidiagonal `d`; stale slots from earlier sweeps are
//! never cleared — reads are guarded by each stored diagonal's
//! candidate interval instead.

use crate::scorety::ScoreTy;
use crate::scoring::Scorer;
use crate::seqview::{Fwd, SeqView};
use crate::stats::{AlignOutput, AlignResult, AlignStats};
use crate::XDropParams;

/// Reusable buffers for [`align_with_workspace`]; reusing a workspace
/// across the thousands of alignments of a batch avoids per-call
/// allocation, as the IPU kernel does with its tile-static arrays.
#[derive(Debug, Default)]
pub struct Workspace<T: ScoreTy> {
    bufs: [Vec<T>; 3],
}

impl<T: ScoreTy> Workspace<T> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            bufs: [Vec::new(), Vec::new(), Vec::new()],
        }
    }

    fn ensure(&mut self, delta: usize) {
        for b in &mut self.bufs {
            if b.len() < delta {
                b.resize(delta, T::neg_inf());
            }
        }
    }
}

/// Candidate interval of a stored antidiagonal (empty when
/// `cand_lo > cand_hi`).
#[derive(Debug, Clone, Copy)]
struct DiagMeta {
    cand_lo: usize,
    cand_hi: usize,
    geo_lo: usize,
}

impl DiagMeta {
    const EMPTY: DiagMeta = DiagMeta {
        cand_lo: 1,
        cand_hi: 0,
        geo_lo: 0,
    };

    #[inline(always)]
    fn get<T: ScoreTy>(&self, buf: &[T], i: usize) -> T {
        if i >= self.cand_lo && i <= self.cand_hi {
            buf[i - self.geo_lo]
        } else {
            T::neg_inf()
        }
    }
}

/// X-Drop extension of `h` × `v` using `i32` scores and forward
/// access. See [`align_views_ty`] for the general form.
///
/// # Example
///
/// ```
/// use xdrop_core::{xdrop3, XDropParams};
/// use xdrop_core::scoring::MatchMismatch;
/// use xdrop_core::alphabet::encode_dna;
///
/// let h = encode_dna(b"ACGTACGTACGT");
/// let out = xdrop3::align(&h, &h, &MatchMismatch::dna_default(), XDropParams::new(10));
/// assert_eq!(out.result.best_score, 12);
/// assert_eq!(out.stats.work_bytes, 3 * out.stats.delta * 4); // 3δ memory
/// ```
pub fn align<S: Scorer>(h: &[u8], v: &[u8], scorer: &S, params: XDropParams) -> AlignOutput {
    let mut ws = Workspace::<i32>::new();
    align_views_ty(&Fwd(h), &Fwd(v), scorer, params, &mut ws)
}

/// [`align`] reusing a caller-provided workspace.
pub fn align_with_workspace<S: Scorer>(
    h: &[u8],
    v: &[u8],
    scorer: &S,
    params: XDropParams,
    ws: &mut Workspace<i32>,
) -> AlignOutput {
    align_views_ty(&Fwd(h), &Fwd(v), scorer, params, ws)
}

/// [`align`] with `f32` score cells — the dual-issue variant of
/// §4.1.4; must produce identical results to the `i32` kernel.
pub fn align_f32<S: Scorer>(h: &[u8], v: &[u8], scorer: &S, params: XDropParams) -> AlignOutput {
    let mut ws = Workspace::<f32>::new();
    align_views_ty(&Fwd(h), &Fwd(v), scorer, params, &mut ws)
}

/// The three-antidiagonal kernel, generic over score cell type and
/// sequence direction.
pub fn align_views_ty<T: ScoreTy, S: Scorer, HV: SeqView, VV: SeqView>(
    h: &HV,
    v: &VV,
    scorer: &S,
    params: XDropParams,
    ws: &mut Workspace<T>,
) -> AlignOutput {
    let (m, n) = (h.len(), v.len());
    let delta = m.min(n) + 1;
    ws.ensure(delta);
    let [b_prev2, b_prev, b_cur] = &mut ws.bufs;
    let gap = scorer.gap();
    let x = params.x;

    // Antidiagonal 0: the origin.
    b_prev[0] = T::from_i32(0);
    let mut meta_prev = DiagMeta {
        cand_lo: 0,
        cand_hi: 0,
        geo_lo: 0,
    };
    let mut meta_prev2 = DiagMeta::EMPTY;

    let mut best = AlignResult::empty();
    let mut t_best = 0i32;
    let (mut live_lo, mut live_hi) = (0usize, 0usize);
    let mut stats = AlignStats {
        cells_computed: 1,
        delta_w: 1,
        delta,
        work_bytes: 3 * delta * std::mem::size_of::<T>(),
        ..Default::default()
    };

    for d in 1..=(m + n) {
        if let Some(cap) = params.max_antidiagonals {
            if stats.antidiagonals as usize >= cap {
                break;
            }
        }
        let geo_lo = d.saturating_sub(m);
        let geo_hi = d.min(n);
        let cand_lo = live_lo.max(geo_lo);
        let cand_hi = (live_hi + 1).min(geo_hi);
        if cand_lo > cand_hi {
            break;
        }
        let meta_cur = DiagMeta {
            cand_lo,
            cand_hi,
            geo_lo,
        };

        let mut t_new = t_best;
        let mut any_live = false;
        let (mut new_lo, mut new_hi) = (usize::MAX, 0usize);
        for i in cand_lo..=cand_hi {
            let j = d - i;
            let diag = if i >= 1 && j >= 1 {
                let p = meta_prev2.get(b_prev2, i - 1);
                if p.is_dropped() {
                    T::neg_inf()
                } else {
                    p.add_i32(scorer.sim(v.at(i - 1), h.at(j - 1)))
                }
            } else {
                T::neg_inf()
            };
            let left = meta_prev.get(b_prev, i).add_i32(gap);
            let up = if i >= 1 {
                meta_prev.get(b_prev, i - 1).add_i32(gap)
            } else {
                T::neg_inf()
            };
            let mut score = diag.maxv(left).maxv(up);
            stats.cells_computed += 1;
            if !score.is_dropped() && score.to_i32() < t_best - x {
                score = T::neg_inf();
                stats.cells_dropped += 1;
            }
            b_cur[i - geo_lo] = score;
            if !score.is_dropped() {
                any_live = true;
                new_lo = new_lo.min(i);
                new_hi = new_hi.max(i);
                let s = score.to_i32();
                t_new = t_new.max(s);
                if s > best.best_score {
                    best = AlignResult {
                        best_score: s,
                        end_h: j,
                        end_v: i,
                    };
                }
            }
        }
        stats.antidiagonals += 1;
        if !any_live {
            break;
        }
        live_lo = new_lo;
        live_hi = new_hi;
        stats.delta_w = stats.delta_w.max(live_hi - live_lo + 1);
        t_best = t_new;

        // Rotate: prev → prev2, cur → prev, old prev2 becomes cur.
        std::mem::swap(b_prev2, b_prev);
        std::mem::swap(b_prev, b_cur);
        meta_prev2 = meta_prev;
        meta_prev = meta_cur;
    }
    AlignOutput {
        result: best,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;
    use crate::reference::xdrop_full_matrix;
    use crate::scoring::{Blosum62, MatchMismatch};
    use crate::seqview::Rev;

    fn sc() -> MatchMismatch {
        MatchMismatch::dna_default()
    }

    fn assert_matches_reference(h: &[u8], v: &[u8], x: i32) {
        let p = XDropParams::new(x);
        let a = xdrop_full_matrix(h, v, &sc(), p);
        let b = align(h, v, &sc(), p);
        assert_eq!(a.result, b.result, "result mismatch for x={x}");
        assert_eq!(
            a.stats.cells_computed, b.stats.cells_computed,
            "cells mismatch for x={x}"
        );
        assert_eq!(a.stats.antidiagonals, b.stats.antidiagonals);
        assert_eq!(a.stats.delta_w, b.stats.delta_w);
        assert_eq!(a.stats.cells_dropped, b.stats.cells_dropped);
    }

    #[test]
    fn identical_sequences() {
        let s = encode_dna(b"ACGTACGTACGTACGT");
        let out = align(&s, &s, &sc(), XDropParams::new(5));
        assert_eq!(out.result.best_score, 16);
        assert_eq!(out.result.end_h, 16);
        assert_eq!(out.result.end_v, 16);
    }

    #[test]
    fn empty_sequences() {
        let s = encode_dna(b"ACGT");
        let out = align(&s, &[], &sc(), XDropParams::new(5));
        assert_eq!(out.result, AlignResult::empty());
        let out = align(&[], &[], &sc(), XDropParams::new(5));
        assert_eq!(out.result, AlignResult::empty());
    }

    #[test]
    fn matches_reference_on_fixed_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"ACGTACGT", b"ACGTACGT"),
            (b"ACGTACGTACGT", b"ACGAACGTTCGT"),
            (b"AAAAAAAAAA", b"TTTTTTTTTT"),
            (b"ACGT", b"ACGTACGTACGTACGT"),
            (b"ACGTACGTACGTACGT", b"ACGT"),
            (b"ACGTAACGTACGT", b"ACGTACGTACGT"), // insertion
            (b"ACGTACGTACGT", b"ACGTAACGTACGT"), // deletion
            (b"A", b"A"),
            (b"A", b"C"),
        ];
        for (h, v) in cases {
            let h = encode_dna(h);
            let v = encode_dna(v);
            for x in [0, 1, 2, 5, 20, 1000] {
                assert_matches_reference(&h, &v, x);
            }
        }
    }

    #[test]
    fn f32_kernel_matches_i32() {
        let h = encode_dna(b"ACGTACGTACGTAAGGTACGTACGTTTTACGT");
        let v = encode_dna(b"ACGTACGAACGTAAGGTACGTACTTTTTACGA");
        for x in [1, 3, 10, 100] {
            let a = align(&h, &v, &sc(), XDropParams::new(x));
            let b = align_f32(&h, &v, &sc(), XDropParams::new(x));
            assert_eq!(a.result, b.result);
            assert_eq!(a.stats.cells_computed, b.stats.cells_computed);
        }
    }

    #[test]
    fn reverse_views_equal_reversed_copies() {
        let h = encode_dna(b"ACGTTACGGTACGTACAA");
        let v = encode_dna(b"ACGTTACGTACGTACAAG");
        let hr: Vec<u8> = h.iter().rev().copied().collect();
        let vr: Vec<u8> = v.iter().rev().copied().collect();
        let mut ws = Workspace::<i32>::new();
        let p = XDropParams::new(4);
        let via_view = align_views_ty(&Rev(&h), &Rev(&v), &sc(), p, &mut ws);
        let via_copy = align(&hr, &vr, &sc(), p);
        assert_eq!(via_view.result, via_copy.result);
        assert_eq!(via_view.stats.cells_computed, via_copy.stats.cells_computed);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        // A long alignment followed by a short one: stale buffer
        // contents must not leak into the second result.
        let mut ws = Workspace::<i32>::new();
        let long = encode_dna(b"ACGTACGTACGTACGTACGTACGTACGTACGT");
        let _ = align_with_workspace(&long, &long, &sc(), XDropParams::new(100), &mut ws);
        let short_h = encode_dna(b"ACGT");
        let short_v = encode_dna(b"ACCT");
        let fresh = align(&short_h, &short_v, &sc(), XDropParams::new(100));
        let reused =
            align_with_workspace(&short_h, &short_v, &sc(), XDropParams::new(100), &mut ws);
        assert_eq!(fresh.result, reused.result);
        assert_eq!(fresh.stats.cells_computed, reused.stats.cells_computed);
    }

    #[test]
    fn protein_alignment_blosum() {
        use crate::alphabet::encode_protein;
        let s = Blosum62::pastis_default();
        let h = encode_protein(b"MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ");
        let v = encode_protein(b"MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ");
        let out = align(&h, &v, &s, XDropParams::new(49));
        let self_score: i32 = h.iter().map(|&a| s.sim(a, a)).sum();
        assert_eq!(out.result.best_score, self_score);
    }

    #[test]
    fn work_memory_is_three_delta() {
        let h = encode_dna(b"ACGTACGTACGT"); // 12
        let v = encode_dna(b"ACGTACGT"); // 8
        let out = align(&h, &v, &sc(), XDropParams::new(10));
        assert_eq!(out.stats.delta, 9);
        assert_eq!(out.stats.work_bytes, 3 * 9 * 4);
    }

    #[test]
    fn x_zero_follows_only_improving_paths() {
        // With X = 0, any cell below the current best is pruned; on a
        // mismatch-opening pair the extension cannot leave the origin.
        let h = encode_dna(b"TACGT");
        let v = encode_dna(b"CACGT");
        let out = align(&h, &v, &sc(), XDropParams::new(0));
        assert_eq!(out.result.best_score, 0);
    }
}
