//! Directional sequence views — the paper's `op(·)` index transform.
//!
//! A seed match splits each sequence into a *left* part (before the
//! seed) and a *right* part (after it). The right extension walks the
//! sequences forwards; the left extension must walk them backwards.
//! Rather than materializing reversed copies (which would double the
//! per-tile memory and force host-side preprocessing), the paper's
//! kernel parameterizes the inner loop with an index transform
//! `op(i)` that maps logical positions to physical ones. [`SeqView`]
//! is that transform: the aligners are generic over it and
//! monomorphize to a direct (forward or reverse) indexed load.

/// A read-only, possibly direction-reversed window into a sequence.
pub trait SeqView {
    /// Number of symbols in the view.
    fn len(&self) -> usize;

    /// Whether the view is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The symbol at logical position `idx` (`idx < len()`).
    fn at(&self, idx: usize) -> u8;

    /// Fills `out` with the symbols at logical positions
    /// `start, start + 1, …, start + out.len() − 1`.
    ///
    /// The whole range must be in bounds. The lane-parallel kernels
    /// use this to stage one chunk of symbols per fixed-width sweep
    /// instead of issuing a generic `at` per cell; implementors
    /// override it with a bulk copy (or a word-level unpack for
    /// packed storage).
    #[inline(always)]
    fn fill_fwd(&self, start: usize, out: &mut [u8]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.at(start + k);
        }
    }

    /// Fills `out` with the symbols at logical positions
    /// `start, start − 1, …, start + 1 − out.len()` (descending).
    ///
    /// The whole range must be in bounds (`start + 1 ≥ out.len()`).
    /// This is the access pattern of the `H` sequence along an
    /// antidiagonal: as the row index `i` ascends, the column index
    /// `j = d − i` descends.
    #[inline(always)]
    fn fill_rev(&self, start: usize, out: &mut [u8]) {
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.at(start - k);
        }
    }
}

/// Forward view: logical index `i` maps to physical index `i`.
#[derive(Debug, Clone, Copy)]
pub struct Fwd<'a>(pub &'a [u8]);

impl SeqView for Fwd<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn at(&self, idx: usize) -> u8 {
        self.0[idx]
    }

    #[inline(always)]
    fn fill_fwd(&self, start: usize, out: &mut [u8]) {
        out.copy_from_slice(&self.0[start..start + out.len()]);
    }

    #[inline(always)]
    fn fill_rev(&self, start: usize, out: &mut [u8]) {
        let src = &self.0[start + 1 - out.len()..=start];
        for (o, s) in out.iter_mut().zip(src.iter().rev()) {
            *o = *s;
        }
    }
}

/// Reverse view: logical index `i` maps to physical index
/// `len − 1 − i`, i.e. the left extension's `op(·)`.
#[derive(Debug, Clone, Copy)]
pub struct Rev<'a>(pub &'a [u8]);

impl SeqView for Rev<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn at(&self, idx: usize) -> u8 {
        self.0[self.0.len() - 1 - idx]
    }

    #[inline(always)]
    fn fill_fwd(&self, start: usize, out: &mut [u8]) {
        // Logical ascending = physical descending from len − 1 − start.
        let phys = self.0.len() - 1 - start;
        let src = &self.0[phys + 1 - out.len()..=phys];
        for (o, s) in out.iter_mut().zip(src.iter().rev()) {
            *o = *s;
        }
    }

    #[inline(always)]
    fn fill_rev(&self, start: usize, out: &mut [u8]) {
        // Logical descending = physical ascending: a contiguous copy.
        let phys = self.0.len() - 1 - start;
        out.copy_from_slice(&self.0[phys..phys + out.len()]);
    }
}

/// Materializes a view into an owned `Vec` (tests and debugging).
pub fn collect_view<S: SeqView>(view: &S) -> Vec<u8> {
    (0..view.len()).map(|i| view.at(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_identity() {
        let s = [1u8, 2, 3, 4];
        let v = Fwd(&s);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(collect_view(&v), vec![1, 2, 3, 4]);
    }

    #[test]
    fn reverse_reverses() {
        let s = [1u8, 2, 3, 4];
        let v = Rev(&s);
        assert_eq!(v.len(), 4);
        assert_eq!(collect_view(&v), vec![4, 3, 2, 1]);
    }

    #[test]
    fn empty_views() {
        let s: [u8; 0] = [];
        assert!(Fwd(&s).is_empty());
        assert!(Rev(&s).is_empty());
    }

    #[test]
    fn fill_matches_at_for_both_directions() {
        let s: Vec<u8> = (0..37u8).collect();
        let fwd = Fwd(&s);
        let rev = Rev(&s);
        let mut got = [0u8; 5];
        for start in 0..s.len() {
            let n = (s.len() - start).min(5);
            fwd.fill_fwd(start, &mut got[..n]);
            for (k, &g) in got[..n].iter().enumerate() {
                assert_eq!(g, fwd.at(start + k), "Fwd::fill_fwd {start}+{k}");
            }
            rev.fill_fwd(start, &mut got[..n]);
            for (k, &g) in got[..n].iter().enumerate() {
                assert_eq!(g, rev.at(start + k), "Rev::fill_fwd {start}+{k}");
            }
            let n = (start + 1).min(5);
            fwd.fill_rev(start, &mut got[..n]);
            for (k, &g) in got[..n].iter().enumerate() {
                assert_eq!(g, fwd.at(start - k), "Fwd::fill_rev {start}-{k}");
            }
            rev.fill_rev(start, &mut got[..n]);
            for (k, &g) in got[..n].iter().enumerate() {
                assert_eq!(g, rev.at(start - k), "Rev::fill_rev {start}-{k}");
            }
        }
    }

    #[test]
    fn double_reverse_is_identity() {
        let s = [7u8, 8, 9];
        let once = collect_view(&Rev(&s));
        let twice = collect_view(&Rev(&once[..]));
        assert_eq!(twice, s.to_vec());
    }
}
