//! Directional sequence views — the paper's `op(·)` index transform.
//!
//! A seed match splits each sequence into a *left* part (before the
//! seed) and a *right* part (after it). The right extension walks the
//! sequences forwards; the left extension must walk them backwards.
//! Rather than materializing reversed copies (which would double the
//! per-tile memory and force host-side preprocessing), the paper's
//! kernel parameterizes the inner loop with an index transform
//! `op(i)` that maps logical positions to physical ones. [`SeqView`]
//! is that transform: the aligners are generic over it and
//! monomorphize to a direct (forward or reverse) indexed load.

/// A read-only, possibly direction-reversed window into a sequence.
pub trait SeqView {
    /// Number of symbols in the view.
    fn len(&self) -> usize;

    /// Whether the view is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The symbol at logical position `idx` (`idx < len()`).
    fn at(&self, idx: usize) -> u8;
}

/// Forward view: logical index `i` maps to physical index `i`.
#[derive(Debug, Clone, Copy)]
pub struct Fwd<'a>(pub &'a [u8]);

impl SeqView for Fwd<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn at(&self, idx: usize) -> u8 {
        self.0[idx]
    }
}

/// Reverse view: logical index `i` maps to physical index
/// `len − 1 − i`, i.e. the left extension's `op(·)`.
#[derive(Debug, Clone, Copy)]
pub struct Rev<'a>(pub &'a [u8]);

impl SeqView for Rev<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn at(&self, idx: usize) -> u8 {
        self.0[self.0.len() - 1 - idx]
    }
}

/// Materializes a view into an owned `Vec` (tests and debugging).
pub fn collect_view<S: SeqView>(view: &S) -> Vec<u8> {
    (0..view.len()).map(|i| view.at(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_identity() {
        let s = [1u8, 2, 3, 4];
        let v = Fwd(&s);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert_eq!(collect_view(&v), vec![1, 2, 3, 4]);
    }

    #[test]
    fn reverse_reverses() {
        let s = [1u8, 2, 3, 4];
        let v = Rev(&s);
        assert_eq!(v.len(), 4);
        assert_eq!(collect_view(&v), vec![4, 3, 2, 1]);
    }

    #[test]
    fn empty_views() {
        let s: [u8; 0] = [];
        assert!(Fwd(&s).is_empty());
        assert!(Rev(&s).is_empty());
    }

    #[test]
    fn double_reverse_is_identity() {
        let s = [7u8, 8, 9];
        let once = collect_view(&Rev(&s));
        let twice = collect_view(&Rev(&once[..]));
        assert_eq!(twice, s.to_vec());
    }
}
