//! # xdrop-core
//!
//! Pairwise sequence alignment algorithms reproducing the SC'23 paper
//! *"Space Efficient Sequence Alignment for SRAM-Based Computing:
//! X-Drop on the Graphcore IPU"* (Burchard, Zhao, Langguth, Buluç,
//! Guidi).
//!
//! The crate provides, from slowest/simplest to the paper's
//! contribution:
//!
//! * [`reference`] — full dynamic-programming matrices: global
//!   (Needleman-Wunsch), local (Smith-Waterman), semi-global
//!   extension, and a full-matrix X-Drop used as ground truth for the
//!   space-efficient variants.
//! * [`xdrop3`] — the classical three-antidiagonal X-Drop of Zhang et
//!   al. (the formulation used by SeqAn and LOGAN), requiring `3δ`
//!   working memory with `δ = min(|H|, |V|) + 1`.
//! * [`xdrop2`] — **the paper's contribution**: a two-antidiagonal,
//!   band-restricted X-Drop (Algorithm 1) whose working memory is
//!   `2δ_b` for a user-chosen bound `δ_b ≥ δ_w`, where `δ_w` is the
//!   maximum live band width actually reached during the alignment.
//!   On real long-read data `δ_w ≪ δ`, which is what lets the
//!   algorithm run inside a 624 KB IPU tile.
//! * [`extension`] — seed-and-extend: splitting a seed match into a
//!   left and a right semi-global extension through the `op(·)` index
//!   transform (backwards access instead of sequence reversal).
//!
//! All aligners share the same scoring abstractions ([`scoring`]) and
//! emit the same instrumentation record ([`stats::AlignStats`]) used
//! by the IPU simulator's cost model and by the Figure 2/6
//! reproductions.
//!
//! ## Quick example
//!
//! ```
//! use xdrop_core::prelude::*;
//!
//! let scorer = MatchMismatch::new(1, -1, -1);
//! let h = encode_dna(b"ACGTACGTACGT");
//! let v = encode_dna(b"ACGTTCGTACGT");
//! let out = xdrop2::align(&h, &v, &scorer, XDropParams::new(10), BandPolicy::Grow(8)).unwrap();
//! assert!(out.result.best_score > 0);
//! ```

pub mod affine;
pub mod algorithm1;
pub mod aligner;
pub mod alphabet;
pub mod batched;
pub mod error;
pub mod extension;
pub mod hirschberg;
pub mod kernel;
pub mod ksw2;
pub mod packing;
pub mod reference;
pub mod scorety;
pub mod scoring;
pub mod seqview;
pub mod stats;
pub mod traceback;
pub mod workload;
pub mod xdrop2;
pub mod xdrop3;

/// Convenient re-exports of the types needed for everyday use.
pub mod prelude {
    pub use crate::aligner::{
        AlignOutcome, AlignRequest, Aligner, AlignerKind, Direction, ScoreKind,
    };
    pub use crate::alphabet::{decode_dna, encode_dna, encode_protein, Alphabet};
    pub use crate::error::{AlignError, Result};
    pub use crate::extension::{extend_seed, ExtendOutcome, SeedMatch};
    pub use crate::kernel::KernelKind;
    pub use crate::scoring::{Blosum62, MatchMismatch, Scorer};
    pub use crate::seqview::{Fwd, Rev, SeqView};
    pub use crate::stats::{AlignResult, AlignStats};
    pub use crate::workload::{Comparison, SeqId, SeqSet, Workload};
    pub use crate::xdrop2::{self, BandPolicy};
    pub use crate::xdrop3;
    pub use crate::XDropParams;
}

pub use alphabet::Alphabet;
pub use error::{AlignError, Result};
pub use scoring::{Blosum62, MatchMismatch, Scorer};
pub use stats::{AlignResult, AlignStats};

/// Sentinel for "minus infinity" scores.
///
/// `i32::MIN / 4` leaves ample headroom so that adding a gap penalty
/// (or several) to a dropped cell can never wrap around.
pub const NEG_INF: i32 = i32::MIN / 4;

/// Returns `true` for scores that should be treated as dropped cells.
///
/// Anything at or below `NEG_INF / 2` is considered `-∞`; this
/// absorbs sums such as `NEG_INF + gap` without an explicit branch in
/// the inner loop.
#[inline(always)]
pub fn is_dropped(score: i32) -> bool {
    score <= NEG_INF / 2
}

/// Parameters shared by every X-Drop aligner in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct XDropParams {
    /// The X-Drop threshold: a cell whose score falls more than `x`
    /// below the best score seen so far is pruned to `-∞`.
    pub x: i32,
    /// Optional hard cap on the number of antidiagonals processed
    /// (`None` means run until the live band empties).
    pub max_antidiagonals: Option<usize>,
    /// Which antidiagonal inner-loop implementation runs the
    /// alignment. All kernels are bit-identical (see [`kernel`]);
    /// this only affects host wall-clock, never results or the
    /// modeled IPU cost.
    pub kernel: kernel::KernelKind,
}

impl XDropParams {
    /// X-Drop parameters with threshold `x`, no iteration cap, and
    /// the auto-detected kernel ([`kernel::KernelKind::auto`]).
    pub fn new(x: i32) -> Self {
        Self {
            x,
            max_antidiagonals: None,
            kernel: kernel::KernelKind::auto(),
        }
    }

    /// Effectively disables pruning, making X-Drop equivalent to the
    /// full semi-global extension (useful for testing; see Figure 2c).
    pub fn unbounded() -> Self {
        Self {
            x: i32::MAX / 8,
            max_antidiagonals: None,
            kernel: kernel::KernelKind::auto(),
        }
    }

    /// Limits the number of antidiagonal sweeps.
    pub fn with_max_antidiagonals(mut self, n: usize) -> Self {
        self.max_antidiagonals = Some(n);
        self
    }

    /// Forces a specific antidiagonal kernel.
    pub fn with_kernel(mut self, kernel: kernel::KernelKind) -> Self {
        self.kernel = kernel;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neg_inf_has_headroom() {
        // Adding many gap penalties to NEG_INF must stay "dropped"
        // and must not overflow.
        let mut v = NEG_INF;
        for _ in 0..1000 {
            v = v.checked_add(-100).expect("no overflow");
        }
        assert!(is_dropped(v));
    }

    #[test]
    fn dropped_threshold() {
        assert!(is_dropped(NEG_INF));
        assert!(is_dropped(NEG_INF + 10_000));
        assert!(!is_dropped(0));
        assert!(!is_dropped(-1_000_000));
    }

    #[test]
    fn params_builders() {
        let p = XDropParams::new(15).with_max_antidiagonals(100);
        assert_eq!(p.x, 15);
        assert_eq!(p.max_antidiagonals, Some(100));
        assert!(XDropParams::unbounded().x > 1_000_000);
    }
}
