//! Alphabets and symbol encoding.
//!
//! All aligners operate on sequences of small integer codes
//! (`&[u8]`), not raw ASCII, so that scoring-matrix lookups are a
//! single indexed load — the same representation the paper's IPU
//! codelet uses in tile SRAM.

use crate::error::{AlignError, Result};

/// Number of distinct DNA codes (`A`, `C`, `G`, `T`, `N`).
pub const DNA_CODES: usize = 5;
/// Number of distinct protein codes (20 residues + `B`, `Z`, `X`, `*`).
pub const PROTEIN_CODES: usize = 24;

/// Code assigned to an ambiguous DNA base (`N`).
pub const DNA_N: u8 = 4;

/// The residue order used by the BLOSUM62 table in [`crate::scoring`]:
/// `ARNDCQEGHILKMFPSTWYVBZX*`.
pub const PROTEIN_ORDER: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// The supported sequence alphabets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Alphabet {
    /// Nucleotides: `A`, `C`, `G`, `T` (and `N` for ambiguity).
    Dna,
    /// Amino acids in BLOSUM62 order (see [`PROTEIN_ORDER`]).
    Protein,
}

impl Alphabet {
    /// Number of distinct symbol codes for this alphabet.
    pub fn codes(self) -> usize {
        match self {
            Alphabet::Dna => DNA_CODES,
            Alphabet::Protein => PROTEIN_CODES,
        }
    }

    /// Number of unambiguous symbols (used by random generators).
    pub fn concrete_codes(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::Protein => 20,
        }
    }

    /// Encodes one ASCII byte, case-insensitively.
    pub fn encode_byte(self, b: u8) -> Option<u8> {
        match self {
            Alphabet::Dna => match b.to_ascii_uppercase() {
                b'A' => Some(0),
                b'C' => Some(1),
                b'G' => Some(2),
                b'T' | b'U' => Some(3),
                b'N' => Some(DNA_N),
                _ => None,
            },
            Alphabet::Protein => {
                let up = b.to_ascii_uppercase();
                PROTEIN_ORDER.iter().position(|&c| c == up).map(|p| p as u8)
            }
        }
    }

    /// Decodes one code back to its ASCII symbol.
    pub fn decode_byte(self, code: u8) -> u8 {
        match self {
            Alphabet::Dna => match code {
                0 => b'A',
                1 => b'C',
                2 => b'G',
                3 => b'T',
                _ => b'N',
            },
            Alphabet::Protein => PROTEIN_ORDER.get(code as usize).copied().unwrap_or(b'X'),
        }
    }

    /// Encodes a full ASCII sequence, reporting the first bad byte.
    pub fn encode(self, ascii: &[u8]) -> Result<Vec<u8>> {
        ascii
            .iter()
            .enumerate()
            .map(|(position, &byte)| {
                self.encode_byte(byte)
                    .ok_or(AlignError::InvalidSymbol { byte, position })
            })
            .collect()
    }

    /// Decodes a code sequence back to ASCII.
    pub fn decode(self, codes: &[u8]) -> Vec<u8> {
        codes.iter().map(|&c| self.decode_byte(c)).collect()
    }
}

/// Complement of a DNA code (`A↔T`, `C↔G`; `N` maps to itself).
#[inline(always)]
pub fn dna_complement(code: u8) -> u8 {
    match code {
        0..=3 => 3 - code,
        other => other,
    }
}

/// Reverse complement of an encoded DNA sequence.
///
/// Real read sets contain both strands; overlap pipelines canonicalize
/// k-mers under this operation and align against the reverse
/// complement when a match is cross-strand.
pub fn reverse_complement(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().map(|&c| dna_complement(c)).collect()
}

/// Encodes an ASCII DNA sequence, panicking on invalid bytes.
///
/// Convenience for literals and tests; use [`Alphabet::encode`] for
/// untrusted input.
pub fn encode_dna(ascii: &[u8]) -> Vec<u8> {
    Alphabet::Dna.encode(ascii).expect("valid DNA")
}

/// Decodes DNA codes back to ASCII.
pub fn decode_dna(codes: &[u8]) -> Vec<u8> {
    Alphabet::Dna.decode(codes)
}

/// Encodes an ASCII protein sequence, panicking on invalid bytes.
pub fn encode_protein(ascii: &[u8]) -> Vec<u8> {
    Alphabet::Protein.encode(ascii).expect("valid protein")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip() {
        let s = b"ACGTNacgtn";
        let enc = Alphabet::Dna.encode(s).unwrap();
        assert_eq!(enc, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4]);
        assert_eq!(Alphabet::Dna.decode(&enc), b"ACGTNACGTN".to_vec());
    }

    #[test]
    fn dna_u_maps_to_t() {
        assert_eq!(Alphabet::Dna.encode_byte(b'U'), Some(3));
        assert_eq!(Alphabet::Dna.encode_byte(b'u'), Some(3));
    }

    #[test]
    fn dna_rejects_garbage() {
        let err = Alphabet::Dna.encode(b"ACQT").unwrap_err();
        assert_eq!(
            err,
            AlignError::InvalidSymbol {
                byte: b'Q',
                position: 2
            }
        );
    }

    #[test]
    fn protein_roundtrip_all() {
        let enc = Alphabet::Protein.encode(PROTEIN_ORDER).unwrap();
        assert_eq!(enc, (0..24).collect::<Vec<u8>>());
        assert_eq!(Alphabet::Protein.decode(&enc), PROTEIN_ORDER.to_vec());
    }

    #[test]
    fn protein_case_insensitive() {
        assert_eq!(
            Alphabet::Protein.encode_byte(b'w'),
            Alphabet::Protein.encode_byte(b'W')
        );
    }

    #[test]
    fn protein_rejects_invalid() {
        assert!(Alphabet::Protein.encode_byte(b'J').is_none());
        assert!(Alphabet::Protein.encode(b"ARJ").is_err());
    }

    #[test]
    fn decode_out_of_range_is_lenient() {
        assert_eq!(Alphabet::Dna.decode_byte(200), b'N');
        assert_eq!(Alphabet::Protein.decode_byte(200), b'X');
    }

    #[test]
    fn code_counts() {
        assert_eq!(Alphabet::Dna.codes(), 5);
        assert_eq!(Alphabet::Dna.concrete_codes(), 4);
        assert_eq!(Alphabet::Protein.codes(), 24);
        assert_eq!(Alphabet::Protein.concrete_codes(), 20);
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(dna_complement(0), 3); // A→T
        assert_eq!(dna_complement(1), 2); // C→G
        assert_eq!(dna_complement(2), 1); // G→C
        assert_eq!(dna_complement(3), 0); // T→A
        assert_eq!(dna_complement(DNA_N), DNA_N);
    }

    #[test]
    fn reverse_complement_involution() {
        let s = encode_dna(b"ACGTTGCAN");
        let rc = reverse_complement(&s);
        assert_eq!(Alphabet::Dna.decode(&rc), b"NTGCAACGT".to_vec());
        assert_eq!(reverse_complement(&rc), s);
    }

    #[test]
    fn helpers_match_alphabet() {
        assert_eq!(encode_dna(b"ACGT"), vec![0, 1, 2, 3]);
        assert_eq!(decode_dna(&[0, 1, 2, 3]), b"ACGT".to_vec());
        assert_eq!(encode_protein(b"AR"), vec![0, 1]);
    }
}
