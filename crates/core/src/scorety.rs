//! Score cell types for the antidiagonal kernels.
//!
//! §4.1.4 of the paper describes the *dual instruction issuing*
//! optimization: the IPU tile has separate integer and floating-point
//! pipelines, and the integer registers spilled in the inner loop, so
//! the authors reformulated `Sim` to return floats and moved the score
//! arithmetic to the FP pipeline. To mirror that design choice the
//! kernels here are generic over [`ScoreTy`], with an `i32` and an
//! `f32` instantiation that must produce identical alignments (all
//! realistic scores are small integers, exactly representable in
//! `f32`).

use crate::NEG_INF;

/// A DP score cell: either `i32` (integer pipeline) or `f32`
/// (floating-point pipeline, the paper's dual-issue variant).
pub trait ScoreTy: Copy + PartialOrd + std::fmt::Debug {
    /// The `-∞` sentinel.
    fn neg_inf() -> Self;
    /// Conversion from an integer score.
    fn from_i32(v: i32) -> Self;
    /// Conversion back to an integer score (exact for valid scores).
    fn to_i32(self) -> i32;
    /// Adds an integer penalty/bonus, keeping `-∞` absorbing.
    fn add_i32(self, v: i32) -> Self;
    /// Elementwise maximum.
    fn maxv(self, o: Self) -> Self;
    /// Whether this cell counts as pruned.
    fn is_dropped(self) -> bool;

    /// Views a cell buffer as raw `i32` lanes when the concrete cell
    /// type *is* `i32`.
    ///
    /// This is the hook the explicit-SIMD kernel uses to reach the
    /// integer compare/blend instructions without `unsafe` transmutes
    /// or specialization: the `i32` impl returns the slice unchanged,
    /// every other cell type returns `None` and the caller falls back
    /// to the type-generic chunked sweep.
    #[inline(always)]
    fn as_i32_slice(cells: &[Self]) -> Option<&[i32]>
    where
        Self: Sized,
    {
        let _ = cells;
        None
    }

    /// Mutable variant of [`ScoreTy::as_i32_slice`].
    #[inline(always)]
    fn as_i32_slice_mut(cells: &mut [Self]) -> Option<&mut [i32]>
    where
        Self: Sized,
    {
        let _ = cells;
        None
    }
}

impl ScoreTy for i32 {
    #[inline(always)]
    fn neg_inf() -> Self {
        NEG_INF
    }

    #[inline(always)]
    fn from_i32(v: i32) -> Self {
        v
    }

    #[inline(always)]
    fn to_i32(self) -> i32 {
        self
    }

    #[inline(always)]
    fn add_i32(self, v: i32) -> Self {
        self.saturating_add(v)
    }

    #[inline(always)]
    fn maxv(self, o: Self) -> Self {
        self.max(o)
    }

    #[inline(always)]
    fn is_dropped(self) -> bool {
        crate::is_dropped(self)
    }

    #[inline(always)]
    fn as_i32_slice(cells: &[Self]) -> Option<&[i32]> {
        Some(cells)
    }

    #[inline(always)]
    fn as_i32_slice_mut(cells: &mut [Self]) -> Option<&mut [i32]> {
        Some(cells)
    }
}

impl ScoreTy for f32 {
    #[inline(always)]
    fn neg_inf() -> Self {
        f32::NEG_INFINITY
    }

    #[inline(always)]
    fn from_i32(v: i32) -> Self {
        v as f32
    }

    #[inline(always)]
    fn to_i32(self) -> i32 {
        if self.is_dropped() {
            NEG_INF
        } else {
            self as i32
        }
    }

    #[inline(always)]
    fn add_i32(self, v: i32) -> Self {
        // -∞ + x = -∞ in IEEE arithmetic: absorbing without a branch,
        // exactly the property the IPU kernel exploits.
        self + v as f32
    }

    #[inline(always)]
    fn maxv(self, o: Self) -> Self {
        // IEEE max; NaN cannot occur because -∞ is only ever added to
        // finite values.
        if self >= o {
            self
        } else {
            o
        }
    }

    #[inline(always)]
    fn is_dropped(self) -> bool {
        self == f32::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i32_neg_inf_absorbs() {
        let v = <i32 as ScoreTy>::neg_inf();
        assert!(v.add_i32(-100).is_dropped());
        assert!(v.add_i32(100).is_dropped());
    }

    #[test]
    fn f32_neg_inf_absorbs() {
        let v = <f32 as ScoreTy>::neg_inf();
        assert!(v.add_i32(-100).is_dropped());
        assert!(v.add_i32(100).is_dropped());
        assert_eq!(v.to_i32(), NEG_INF);
    }

    #[test]
    fn roundtrip_exact_for_scores() {
        for s in [-100_000, -1, 0, 1, 42, 100_000] {
            assert_eq!(<i32 as ScoreTy>::from_i32(s).to_i32(), s);
            assert_eq!(<f32 as ScoreTy>::from_i32(s).to_i32(), s);
        }
    }

    #[test]
    fn i32_downcast_hook() {
        let mut a = [1i32, 2, 3];
        assert_eq!(<i32 as ScoreTy>::as_i32_slice(&a), Some(&[1, 2, 3][..]));
        assert!(<i32 as ScoreTy>::as_i32_slice_mut(&mut a).is_some());
        let mut b = [1.0f32, 2.0];
        assert!(<f32 as ScoreTy>::as_i32_slice(&b).is_none());
        assert!(<f32 as ScoreTy>::as_i32_slice_mut(&mut b).is_none());
    }

    #[test]
    fn max_prefers_larger() {
        assert_eq!(5i32.maxv(3), 5);
        assert_eq!(3.0f32.maxv(5.0), 5.0);
        assert_eq!(<f32 as ScoreTy>::neg_inf().maxv(1.0), 1.0);
    }
}
