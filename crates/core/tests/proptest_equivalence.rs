//! Property-based equivalence and invariant tests for the X-Drop
//! kernels.
//!
//! The central claim of the paper's Algorithm 1 is that the
//! two-antidiagonal, band-restricted kernel computes *exactly* the
//! same alignment as the classical three-antidiagonal formulation —
//! in less memory. These properties check that claim on randomized
//! inputs, plus the invariants the rest of the stack relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xdrop_core::extension::{extend_seed, SeedMatch};
use xdrop_core::reference::{extend_full, xdrop_full_matrix};
use xdrop_core::scoring::{Blosum62, MatchMismatch};
use xdrop_core::xdrop2::{self, BandPolicy};
use xdrop_core::{xdrop3, XDropParams};

fn dna_seq(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 0..max_len)
}

/// A pair of related sequences: a root plus mutations, so that the
/// interesting (partially-aligning) region of the parameter space is
/// actually exercised rather than just random noise.
fn related_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna_seq(120), any::<u64>(), 0.0f64..0.4).prop_map(|(root, seed, err)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut other = Vec::with_capacity(root.len() + 8);
        for &b in &root {
            let r: f64 = rng.gen();
            if r < err * 0.6 {
                other.push(rng.gen_range(0..4)); // substitution
            } else if r < err * 0.8 {
                // insertion
                other.push(rng.gen_range(0..4));
                other.push(b);
            } else if r < err {
                // deletion: skip
            } else {
                other.push(b);
            }
        }
        (root, other)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// xdrop3 must agree with the full-matrix specification on
    /// result *and* work accounting.
    #[test]
    fn xdrop3_matches_full_matrix((h, v) in related_pair(), x in 0i32..60) {
        let sc = MatchMismatch::dna_default();
        let p = XDropParams::new(x);
        let a = xdrop_full_matrix(&h, &v, &sc, p);
        let b = xdrop3::align(&h, &v, &sc, p);
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.stats.cells_computed, b.stats.cells_computed);
        prop_assert_eq!(a.stats.antidiagonals, b.stats.antidiagonals);
        prop_assert_eq!(a.stats.delta_w, b.stats.delta_w);
        prop_assert_eq!(a.stats.cells_dropped, b.stats.cells_dropped);
    }

    /// The memory-restricted kernel (with a sufficient band) is
    /// exactly equivalent to xdrop3.
    #[test]
    fn xdrop2_matches_xdrop3((h, v) in related_pair(), x in 0i32..60, db in 1usize..8) {
        let sc = MatchMismatch::dna_default();
        let p = XDropParams::new(x);
        let a = xdrop3::align(&h, &v, &sc, p);
        let b = xdrop2::align(&h, &v, &sc, p, BandPolicy::Grow(db)).unwrap();
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.stats.cells_computed, b.stats.cells_computed);
        prop_assert_eq!(a.stats.delta_w, b.stats.delta_w);
        prop_assert_eq!(a.stats.cells_dropped, b.stats.cells_dropped);
    }

    /// Exact band policy: δ_b = δ_w + 1 always suffices, and then the
    /// result equals the unrestricted one.
    #[test]
    fn exact_band_at_delta_w_plus_one((h, v) in related_pair(), x in 0i32..60) {
        let sc = MatchMismatch::dna_default();
        let p = XDropParams::new(x);
        let probe = xdrop3::align(&h, &v, &sc, p);
        let exact = xdrop2::align(&h, &v, &sc, p, BandPolicy::Exact(probe.stats.delta_w + 1))
            .unwrap();
        prop_assert_eq!(probe.result, exact.result);
    }

    /// The f32 (dual-issue) kernel is bit-equivalent to the i32 one.
    #[test]
    fn f32_kernel_equivalent((h, v) in related_pair(), x in 0i32..60) {
        let sc = MatchMismatch::dna_default();
        let p = XDropParams::new(x);
        let a = xdrop2::align(&h, &v, &sc, p, BandPolicy::Grow(4)).unwrap();
        let b = xdrop2::align_f32(&h, &v, &sc, p, BandPolicy::Grow(4)).unwrap();
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(a.stats.cells_computed, b.stats.cells_computed);
    }

    /// With an unbounded X, X-Drop equals the full semi-global
    /// extension computed by an entirely independent row-wise DP.
    #[test]
    fn unbounded_x_equals_full_extension((h, v) in related_pair()) {
        let sc = MatchMismatch::dna_default();
        let full = extend_full(&h, &v, &sc);
        let xd = xdrop3::align(&h, &v, &sc, XDropParams::unbounded());
        prop_assert_eq!(full.result.best_score, xd.result.best_score);
        prop_assert_eq!(full.result.end_h, xd.result.end_h);
        prop_assert_eq!(full.result.end_v, xd.result.end_v);
    }

    /// Pruning can only lose score, never invent it; and the score is
    /// monotone non-decreasing in X.
    #[test]
    fn score_monotone_in_x((h, v) in related_pair(), x in 0i32..40) {
        let sc = MatchMismatch::dna_default();
        let small = xdrop3::align(&h, &v, &sc, XDropParams::new(x));
        let large = xdrop3::align(&h, &v, &sc, XDropParams::new(x + 10));
        let full = extend_full(&h, &v, &sc);
        prop_assert!(small.result.best_score <= large.result.best_score);
        prop_assert!(large.result.best_score <= full.result.best_score);
        // Work is monotone too.
        prop_assert!(small.stats.cells_computed <= large.stats.cells_computed);
        prop_assert!(small.stats.delta_w <= large.stats.delta_w);
    }

    /// Basic sanity invariants on every output.
    #[test]
    fn output_invariants((h, v) in related_pair(), x in 0i32..60) {
        let sc = MatchMismatch::dna_default();
        let out = xdrop3::align(&h, &v, &sc, XDropParams::new(x));
        // Score at least 0 (empty extension allowed) and at most
        // min(m, n) * match.
        prop_assert!(out.result.best_score >= 0);
        prop_assert!(out.result.best_score <= h.len().min(v.len()) as i32);
        // End position inside the matrix.
        prop_assert!(out.result.end_h <= h.len());
        prop_assert!(out.result.end_v <= v.len());
        // δ_w bounded by δ.
        prop_assert!(out.stats.delta_w <= out.stats.delta);
        // Cells computed bounded by the full matrix (incl. borders).
        prop_assert!(out.stats.cells_computed <= ((h.len() + 1) * (v.len() + 1)) as u64);
    }

    /// Saturate never over-reports relative to exact X-Drop.
    #[test]
    fn saturate_upper_bounded((h, v) in related_pair(), x in 0i32..60, db in 1usize..12) {
        let sc = MatchMismatch::dna_default();
        let p = XDropParams::new(x);
        let exact = xdrop3::align(&h, &v, &sc, p);
        let sat = xdrop2::align(&h, &v, &sc, p, BandPolicy::Saturate(db)).unwrap();
        prop_assert!(sat.result.best_score <= exact.result.best_score);
    }

    /// Seed extension: score decomposes into left + seed + right, and
    /// the spans contain the seed.
    #[test]
    fn extension_decomposition(
        (h, v) in related_pair(),
        hp in 0usize..40,
        vp in 0usize..40,
        k in 1usize..12,
        x in 0i32..40,
    ) {
        let sc = MatchMismatch::dna_default();
        prop_assume!(hp + k <= h.len() && vp + k <= v.len());
        let seed = SeedMatch::new(hp, vp, k);
        let out = extend_seed(&h, &v, seed, &sc, XDropParams::new(x), BandPolicy::Grow(4))
            .unwrap();
        prop_assert_eq!(
            out.score,
            out.left.result.best_score + out.seed_score + out.right.result.best_score
        );
        prop_assert!(out.h_span.0 <= hp && out.h_span.1 >= hp + k);
        prop_assert!(out.v_span.0 <= vp && out.v_span.1 >= vp + k);
        prop_assert!(out.h_span.1 <= h.len());
        prop_assert!(out.v_span.1 <= v.len());
    }

    /// Protein alignment with BLOSUM62 obeys the same equivalences.
    #[test]
    fn protein_equivalence(root in prop::collection::vec(0u8..20, 0..80), x in 0i32..60) {
        let sc = Blosum62::pastis_default();
        // Mutate a copy.
        let mut rng = StdRng::seed_from_u64(root.len() as u64 * 7 + x as u64);
        let v: Vec<u8> = root
            .iter()
            .map(|&b| if rng.gen_bool(0.15) { rng.gen_range(0..20) } else { b })
            .collect();
        let p = XDropParams::new(x);
        let a = xdrop_full_matrix(&root, &v, &sc, p);
        let b = xdrop3::align(&root, &v, &sc, p);
        let c = xdrop2::align(&root, &v, &sc, p, BandPolicy::Grow(4)).unwrap();
        prop_assert_eq!(a.result, b.result);
        prop_assert_eq!(b.result, c.result);
    }

    /// The self-alignment of any sequence scores the sum of
    /// self-similarities and ends at the corner (for reasonable X).
    #[test]
    fn self_alignment_is_perfect(s in dna_seq(100)) {
        let sc = MatchMismatch::dna_default();
        let out = xdrop2::align(&s, &s, &sc, XDropParams::new(10), BandPolicy::Grow(4)).unwrap();
        prop_assert_eq!(out.result.best_score, s.len() as i32);
        prop_assert_eq!(out.result.end_h, s.len());
        prop_assert_eq!(out.result.end_v, s.len());
    }
}

/// Deterministic regression corpus: a fixed RNG generates mutated
/// pairs at several error rates; all three kernels must agree on all
/// of them. (Complements proptest with stable coverage.)
#[test]
fn regression_corpus_all_kernels_agree() {
    let sc = MatchMismatch::dna_default();
    let mut rng = StdRng::seed_from_u64(0xD0E5);
    for case in 0..60 {
        let len = rng.gen_range(1..300);
        let err: f64 = rng.gen_range(0.0..0.5);
        let h: Vec<u8> = (0..len).map(|_| rng.gen_range(0..4)).collect();
        let mut v = Vec::with_capacity(len);
        for &b in &h {
            if rng.gen_bool(err) {
                match rng.gen_range(0..3) {
                    0 => v.push(rng.gen_range(0..4)),
                    1 => {
                        v.push(rng.gen_range(0..4));
                        v.push(b);
                    }
                    _ => {}
                }
            } else {
                v.push(b);
            }
        }
        for x in [0, 3, 7, 15, 31, 101] {
            let p = XDropParams::new(x);
            let a = xdrop_full_matrix(&h, &v, &sc, p);
            let b = xdrop3::align(&h, &v, &sc, p);
            let c = xdrop2::align(&h, &v, &sc, p, BandPolicy::Grow(2)).unwrap();
            assert_eq!(a.result, b.result, "case {case} x {x}");
            assert_eq!(b.result, c.result, "case {case} x {x}");
            assert_eq!(
                a.stats.cells_computed, c.stats.cells_computed,
                "case {case} x {x}"
            );
        }
    }
}
