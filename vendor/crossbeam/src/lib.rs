//! Offline stand-in for the `crossbeam` crate.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so the
//! `crossbeam::thread::scope` pattern this workspace uses maps
//! directly onto `std::thread::scope`; this crate adapts the API
//! shape (the spawn closure receives the scope again, and `scope`
//! returns a `Result`) without any unsafe code.

/// Scoped threads with the crossbeam calling convention.
pub mod thread {
    /// Result of joining a (possibly panicked) thread.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle; clonable into spawned closures so they can
    /// spawn further siblings, exactly like crossbeam's.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handoff = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handoff)),
            }
        }
    }

    /// Runs `f` with a scope; all threads spawned in it are joined
    /// before `scope` returns. The `Result` wrapper mirrors
    /// crossbeam (std's version propagates panics instead, so the
    /// error arm is unreachable here — child panics surface when the
    /// caller joins their handles).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_from_child() {
        let n = thread::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
