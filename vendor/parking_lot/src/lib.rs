//! Offline stand-in for `parking_lot`: the poison-free lock API
//! backed by `std::sync`. Poisoning is swallowed (`into_inner` of
//! the poison error) because parking_lot locks never poison.

use std::sync;

/// Mutual exclusion, `lock()` returning the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock, `read()`/`write()` returning guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
