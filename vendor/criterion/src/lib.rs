//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! keeps the workspace's `[[bench]]` targets compiling and runnable
//! with the real criterion API shape, minus statistics: each
//! benchmark body executes a small fixed number of timed iterations
//! and reports the mean, instead of adaptive sampling with outlier
//! analysis. Good enough to smoke-run every bench and get rough
//! numbers; swap the real crate back in for publishable figures.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 1;
const MEASURE_ITERS: u32 = 3;

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Creates a benchmark context, honouring a name filter and the
    /// `--test` smoke flag (run every body exactly once, no timing —
    /// what `cargo bench -- --test` uses in CI); other harness flags
    /// (`--bench`, ...) passed by cargo are ignored.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion { filter, test_mode }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        run_one(filter.as_deref(), self.test_mode, name, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(
            self._criterion.filter.as_deref(),
            self._criterion.test_mode,
            &full,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            self._criterion.filter.as_deref(),
            self._criterion.test_mode,
            &full,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
    test_mode: bool,
}

impl Bencher {
    /// Runs `routine` a fixed number of times and records the mean;
    /// in `--test` smoke mode the routine runs exactly once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.elapsed = Duration::ZERO;
            self.iters = 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(filter: Option<&str>, test_mode: bool, id: &str, mut f: F) {
    if let Some(needle) = filter {
        if !id.contains(needle) {
            return;
        }
    }
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("bench: {id:<60} ok (--test, 1 iter)");
        return;
    }
    let mean = bencher.elapsed / bencher.iters.max(1);
    println!(
        "bench: {id:<60} {mean:>12.3?}/iter ({} iters)",
        bencher.iters
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("inner", 4), &4u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        assert!(calls >= MEASURE_ITERS);
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
    }
}
