//! Offline stand-in for `proptest`.
//!
//! crates.io is unreachable in this build environment, so this crate
//! reimplements the slice of proptest the workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`],
//! [`arbitrary::any`], [`test_runner::ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and
//!   seed instead of a minimized input. Failures stay reproducible
//!   because case seeds derive deterministically from the test name.
//! * **No persistence files**, no fork, no timeout.
//!
//! Neither limitation changes whether a property holds.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a random source.
    ///
    /// The real crate separates strategies from value trees to
    /// support shrinking; without shrinking a strategy is just a
    /// seeded generator.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Uses each generated value to build a follow-up strategy,
        /// then draws from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    trait DynStrategy {
        type Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    /// Strategy returning a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.new_value(rng)).new_value(rng)
        }
    }

    /// References to strategies draw like the strategy itself.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {:?}", self
                    );
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T` (`any::<T>()`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<$wide>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64
    );

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.gen()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Bounds on a generated collection's length.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        /// Inclusive minimum length.
        pub min: usize,
        /// Inclusive maximum length.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range {r:?}");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic random source handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config requiring `cases` passing cases — still scaled by a
        /// `PROPTEST_CASES` override if one is set, matching the real
        /// crate's env-var behaviour so CI smoke jobs can run reduced
        /// sweeps without touching the source defaults.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(cases),
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: env_cases().unwrap_or(256),
            }
        }
    }

    /// The `PROPTEST_CASES` override: parsed once per process (same
    /// discipline as the workspace's kernel/sweep env knobs — an
    /// in-process `set_var` after the first config is built has no
    /// effect, so overrides cannot leak between tests).
    fn env_cases() -> Option<u32> {
        static RESOLVED: std::sync::OnceLock<Option<u32>> = std::sync::OnceLock::new();
        *RESOLVED.get_or_init(|| {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&n| n > 0)
        })
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw new ones.
        Reject,
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Drives one property over many generated cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs `case` until `config.cases` cases pass, panicking on
        /// the first failure. Case seeds derive from the test name so
        /// every run of a given binary explores the same inputs
        /// (there is no shrinker to minimize a novel failure with).
        pub fn run_named(
            &mut self,
            name: &str,
            mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        ) {
            let base = fnv1a(name.as_bytes());
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let max_rejects = self.config.cases.saturating_mul(16).max(1024);
            let mut case_index = 0u64;
            while passed < self.config.cases {
                let seed = base ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = TestRng::seed_from_u64(seed);
                match case(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "property `{name}`: too many prop_assume! \
                                 rejections ({rejected}) for {} passing cases",
                                passed
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{name}` failed at case {case_index} \
                             (seed {seed:#x}): {msg}"
                        );
                    }
                }
                case_index += 1;
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace mirror so `prop::collection::vec` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn` runs its body over many
/// generated inputs. Parameters are either `pat in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run_named(stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                let __proptest_outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __proptest_outcome
            });
        }
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds one parameter list.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $arg:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $arg: $ty = $crate::strategy::Strategy::new_value(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::new_value(&$strategy, $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)+);
            }
        }
    };
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..9, b in -4i32..4, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn typed_args_and_tuples(flag: bool, (x, y) in (0u8..10, 10u8..20)) {
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(x < 10 && (10..20).contains(&y));
        }

        #[test]
        fn vec_and_flat_map(v in prop::collection::vec(1u64..100, 0..16)) {
            prop_assert!(v.len() < 16);
            prop_assert!(v.iter().all(|&e| (1..100).contains(&e)));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn flat_map_chains_sizes() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (2usize..6)
            .prop_flat_map(|n| crate::collection::vec(0u8..3, n).prop_map(move |v| (n, v)));
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..32 {
            let (n, v) = strat.new_value(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            let mut runner = TestRunner::new(crate::test_runner::ProptestConfig::with_cases(8));
            runner.run_named("determinism_probe", |rng| {
                out.push((0u64..1000).new_value(rng));
                Ok(())
            });
        }
        assert_eq!(first, second);
    }
}
