//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this build environment, so `syn` and
//! `quote` are unavailable; the derives below parse the item's raw
//! token stream by hand. They support exactly the shapes this
//! workspace uses:
//!
//! * structs with named fields (possibly empty),
//! * tuple structs (newtype or longer),
//! * unit structs,
//! * enums with unit, tuple, or struct variants,
//!
//! all without generic parameters. Attributes (including doc
//! comments) are skipped wherever they may appear; `#[serde(...)]`
//! customization is intentionally not supported and is rejected so
//! a future use fails loudly instead of being ignored.
//!
//! The generated code targets the simplified externally-tagged data
//! model of the sibling `serde` stub: structs map to
//! `Content::Map`, unit variants to `Content::Str`, payload
//! variants to single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let source = match parse_item(input).map(|item| generate(&item, dir)) {
        Ok(src) => src,
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    source.parse().expect("serde_derive generated invalid Rust")
}

/// Parses the derive input item down to names and field lists.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (doc comments arrive as `#[doc = ...]`)
    // and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let attr = g.stream().to_string();
                        if attr.starts_with("serde") {
                            return Err(format!(
                                "the offline serde_derive stub does not support \
                                 #[serde(...)] attributes (found `{attr}`)"
                            ));
                        }
                    }
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the offline serde_derive stub does not support generic type `{name}`"
            ));
        }
    }
    match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Item::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            })
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => {
            Ok(Item::UnitStruct { name })
        }
        ("struct", None) => Ok(Item::UnitStruct { name }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        (k, other) => Err(format!("unsupported item shape: {k} ... {other:?}")),
    }
}

/// Extracts field names from a brace-delimited named-field list,
/// skipping attributes, visibility, and types (commas inside angle
/// brackets or nested groups do not terminate a field).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        // Consume the type: commas nested in `<...>` belong to it.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Counts the fields of a paren-delimited tuple-field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() != '#' {
                break;
            }
            tokens.next();
            tokens.next();
        }
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn generate(item: &Item, dir: Direction) -> String {
    match dir {
        Direction::Serialize => generate_serialize(item),
        Direction::Deserialize => generate_deserialize(item),
    }
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } if *arity == 1 => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::to_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Seq(::std::vec![{items}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_content(&self) -> ::serde::Content {{\n\
                     ::serde::Content::Null\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\
                             ::std::string::String::from({vname:?})),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_content(f0))]),"
                        ),
                        VariantShape::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Content::Seq(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_content({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Content::Map(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Shared snippet: builds one named field from `map`, honouring
/// `absent()` when the key is missing.
fn named_field_expr(owner: &str, field: &str) -> String {
    format!(
        "{field}: match __content.field({field:?}) {{\n\
             ::std::option::Option::Some(c) => ::serde::Deserialize::from_content(c)?,\n\
             ::std::option::Option::None => ::serde::Deserialize::absent()\n\
                 .ok_or_else(|| ::serde::Error::custom(::std::format!(\
                     \"missing field `{{}}` in {owner}\", {field:?})))?,\n\
         }},"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let field_exprs: String = fields.iter().map(|f| named_field_expr(name, f)).collect();
            format!(
                "if __content.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected map for struct {name}, found {{}}\", \
                         __content.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {field_exprs} }})"
            )
        }
        Item::TupleStruct { name, arity } if *arity == 1 => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__content)?))"
        ),
        Item::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?,"))
                .collect();
            format!(
                "let __seq = __content.as_seq().ok_or_else(|| ::serde::Error::custom(\
                     \"expected sequence for tuple struct {name}\"))?;\n\
                 if __seq.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"wrong tuple struct arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Item::UnitStruct { name } => {
            format!("::std::result::Result::Ok({name})")
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(__payload)?)),"
                        )),
                        VariantShape::Tuple(arity) => {
                            let items: String = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&__seq[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let __seq = __payload.as_seq().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected sequence payload\"))?;\n\
                                     if __seq.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\"wrong variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({items}))\n\
                                 }}"
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let field_exprs: String = fields
                                .iter()
                                .map(|f| {
                                    named_field_expr(name, f).replace("__content", "__payload")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {field_exprs} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected variant of {name}, found {{}}\", \
                         other.kind()))),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
