//! Offline stand-in for `serde_json`: serializes the sibling serde
//! stub's [`Content`] tree to JSON text and parses JSON text back,
//! covering `to_string`, `to_string_pretty`, `to_writer_pretty`,
//! and `from_str`.

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// `Result` alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Pretty-prints a value into a writer.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error(e.to_string()))
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            write_group(
                out,
                indent,
                depth,
                '[',
                ']',
                items.len(),
                |out, i, depth| {
                    write_content(out, &items[i], indent, depth);
                },
            );
        }
        Content::Map(entries) => {
            write_group(
                out,
                indent,
                depth,
                '{',
                '}',
                entries.len(),
                |out, i, depth| {
                    let (key, value) = &entries[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_content(out, value, indent, depth);
                },
            );
        }
    }
}

fn write_group(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

/// Matches serde_json: non-finite floats serialize as `null`;
/// finite floats keep a fractional marker so they reparse as
/// floats.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let text = format!("{v}");
    out.push_str(&text);
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, to_string_pretty};
    use serde::Content;

    #[test]
    fn compact_roundtrip() {
        let v = vec![1u32, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_has_indentation() {
        let v = vec![1u32, 2];
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_keep_fraction_marker() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = String::from("a\"b\\c\nd\u{1F600}");
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "A\u{1F600}");
    }

    #[test]
    fn numbers_pick_narrowest_content() {
        let p = |s: &str| -> Content {
            let mut parser = super::Parser {
                bytes: s.as_bytes(),
                pos: 0,
            };
            parser.parse_value().unwrap()
        };
        assert_eq!(p("42"), Content::U64(42));
        assert_eq!(p("-42"), Content::I64(-42));
        assert_eq!(p("1.5"), Content::F64(1.5));
        assert_eq!(p("1e3"), Content::F64(1000.0));
    }
}
