//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the API surface the workspace uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, `gen_range` over
//! half-open and inclusive integer/float ranges, `gen_bool`, `gen`
//! for primitives, and the [`rngs::StdRng`] / [`rngs::SmallRng`]
//! deterministic generators (xoshiro256++ seeded via SplitMix64 —
//! the same construction the real `rand` uses for seeding).
//!
//! Everything is deterministic given the seed; no OS entropy is ever
//! consulted, which is exactly what reproducible tests want.

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's raw
/// output (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types [`Rng::gen_range`] can draw uniformly. Mirrors the
/// real crate's `SampleUniform`; having one generic [`SampleRange`]
/// impl per range shape (rather than one per element type) is what
/// lets inference flow through call sites like
/// `rng.gen_range(2..=6).min(n)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (`[low, high]` when
    /// `inclusive`). Callers guarantee the range is non-empty.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let width =
                    (high as i128 - low as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % width;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics when the
    /// range is empty, matching the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Draw from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Fills a byte slice (convenience mirror of `fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed by expanding it with
    /// SplitMix64 (the real crate's construction).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a small, fast, statistically solid generator;
    /// deterministic stand-in for the real crate's ChaCha-based
    /// `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Same generator under the real crate's `SmallRng` name.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(StdRng::from_seed(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=6);
            assert!((2..=6).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }
}
