//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of serde the workspace relies on: derivable
//! [`Serialize`] / [`Deserialize`] traits over a self-describing
//! [`Content`] tree (the moral equivalent of `serde_json::Value`,
//! hoisted into the data-model crate so the derive macros and the
//! JSON front-end in `serde_json` can share it).
//!
//! The data model is serde's externally-tagged one, so the JSON
//! produced by `serde_json` matches what the real crates emit for
//! the types in this workspace: structs become maps, unit enum
//! variants become strings, and newtype variants become
//! single-entry maps.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (kept apart so `u64::MAX` survives).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order (structs, enum
    /// variants with payloads).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Map entries when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Sequence elements when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a struct field by name.
    pub fn field(&self, name: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` to the data model.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parses a value from the data model.
    fn from_content(content: &Content) -> Result<Self, Error>;

    /// Value to use when a struct field is absent (`None` for
    /// `Option`, nothing for everything else — mirroring how the
    /// real derive treats optional fields in this workspace).
    fn absent() -> Option<Self> {
        None
    }
}

fn unexpected<T>(expected: &str, got: &Content) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, found {}",
        got.kind()
    )))
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                #[allow(unused_comparisons)]
                if *self < 0 {
                    Content::I64(*self as i64)
                } else {
                    Content::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let err = || {
                    Error::custom(format!(
                        "integer out of range for {}", stringify!($t)
                    ))
                };
                match content {
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| err()),
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| err()),
                    other => unexpected("integer", other),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => unexpected("float", other),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => unexpected("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => unexpected("string", other),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

/// `&'static str` deserialization so `Copy` config structs with
/// static name fields (e.g. hardware spec names) round-trip.
/// Well-known names resolve to true statics; anything else is
/// interned once per distinct string for the process lifetime —
/// bounded by the tiny set of config names that ever appear.
impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) => Ok(intern(s)),
            other => unexpected("string", other),
        }
    }
}

fn intern(s: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match pool.get(s) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => unexpected("single-character string", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => unexpected("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_content(content)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of {N} elements, found {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = content
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected sequence for tuple"))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of {LEN}, found sequence of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString + std::str::FromStr + Ord, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: ToString + std::str::FromStr + Ord, V: Deserialize> Deserialize
    for std::collections::BTreeMap<K, V>
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        let entries = content
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| Error::custom("unparseable map key"))?;
                Ok((key, V::from_content(v)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::{Content, Deserialize, Serialize};

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_content(&s.to_content()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let c = v.to_content();
        assert_eq!(Vec::<(u32, f64)>::from_content(&c).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(o.to_content(), Content::Null);
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn integers_check_range() {
        let big = Content::U64(300);
        assert!(u8::from_content(&big).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn floats_accept_integer_content() {
        assert_eq!(f64::from_content(&Content::I64(3)).unwrap(), 3.0);
        assert_eq!(f64::from_content(&Content::U64(4)).unwrap(), 4.0);
    }
}
